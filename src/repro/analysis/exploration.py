"""§6: community exploration and duplicate bursts around beacon phases.

*Community exploration* is the paper's name for the phenomenon in
Figure 4: during withdrawal-driven path exploration, a single AS path
is re-announced repeatedly with *different communities* (typically the
geo-tags of successive ingress points), producing runs of ``nc``
announcements.  Figure 5 shows the corresponding ``nn`` runs when the
peer cleans communities at egress but not ingress.

This module labels observations with beacon phases, extracts the
cumulative-sum series the figures plot, and detects exploration events
(a path-change announcement followed by a run of ``nc``/``nn`` within a
withdrawal phase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.classify import (
    AnnouncementType,
    UpdateClassifier,
)
from repro.analysis.observations import Observation
from repro.beacons.schedule import BeaconSchedule, PhaseKind


@dataclass(frozen=True)
class LabeledAnnouncement:
    """An announcement with its type and beacon-phase label."""

    observation: Observation
    announcement_type: Optional[AnnouncementType]
    phase: PhaseKind


def label_phases(
    observations: Iterable[Observation],
    schedule: "BeaconSchedule | None" = None,
) -> "List[LabeledAnnouncement]":
    """Classify announcements and tag each with its beacon phase."""
    schedule = schedule or BeaconSchedule()
    classifier = UpdateClassifier()
    labeled: List[LabeledAnnouncement] = []
    for observation in observations:
        announcement_type = classifier.observe(observation)
        if observation.is_withdrawal:
            continue
        labeled.append(
            LabeledAnnouncement(
                observation,
                announcement_type,
                schedule.classify(observation.timestamp),
            )
        )
    return labeled


@dataclass
class PhaseActivity:
    """Per-phase announcement counts for one stream (Figures 4/5)."""

    #: (timestamp, announcement type) in arrival order.
    events: "List[Tuple[float, AnnouncementType]]" = field(
        default_factory=list
    )
    withdrawals: "List[float]" = field(default_factory=list)

    def cumulative_series(
        self,
    ) -> "Dict[AnnouncementType, List[Tuple[float, int]]]":
        """Per-type cumulative sums over time — the figures' y-axes."""
        series: Dict[AnnouncementType, List[Tuple[float, int]]] = {
            kind: [] for kind in AnnouncementType
        }
        counts = {kind: 0 for kind in AnnouncementType}
        for timestamp, kind in self.events:
            counts[kind] += 1
            series[kind].append((timestamp, counts[kind]))
        return series

    def type_counts(self) -> "Dict[AnnouncementType, int]":
        """Total per type."""
        counts = {kind: 0 for kind in AnnouncementType}
        for _, kind in self.events:
            counts[kind] += 1
        return counts

    @property
    def total_announcements(self) -> int:
        """All classified announcements on the stream."""
        return len(self.events)


def stream_phase_activity(
    stream: "List[Observation]",
) -> PhaseActivity:
    """Build the Figure 4/5 series for one (session, prefix) stream."""
    classifier = UpdateClassifier()
    activity = PhaseActivity()
    for observation in stream:
        announcement_type = classifier.observe(observation)
        if observation.is_withdrawal:
            activity.withdrawals.append(observation.timestamp)
        elif announcement_type is not None:
            activity.events.append(
                (observation.timestamp, announcement_type)
            )
    return activity


@dataclass
class ExplorationEvent:
    """One detected exploration burst within a withdrawal phase."""

    session: "tuple"
    start: float
    end: float
    #: Type of the announcement opening the burst.  Usually ``pc``/
    #: ``pn`` (a path-exploration step), but a burst may reopen with a
    #: spurious ``nc``/``nn`` when the explored path equals the
    #: pre-withdrawal one.
    opener: AnnouncementType
    #: Count of follow-up spurious announcements (nc or nn).
    spurious_count: int
    #: Distinct community attributes observed during the burst.
    distinct_communities: int

    @property
    def is_community_exploration(self) -> bool:
        """nc-dominated burst (Figure 4 pattern)."""
        return self.opener in (AnnouncementType.PC, AnnouncementType.NC)

    @property
    def is_duplicate_burst(self) -> bool:
        """nn-dominated burst (Figure 5 pattern)."""
        return self.opener in (AnnouncementType.PN, AnnouncementType.NN)


class CommunityExplorationDetector:
    """Finds exploration bursts in per-stream observation lists.

    A burst is opened by a path-changing announcement (``pc``/``pn``)
    inside a withdrawal-phase window and extended by consecutive
    ``nc``/``nn`` announcements within *burst_gap* seconds of the
    previous one.  Bursts need at least *min_spurious* follow-ups to be
    reported.
    """

    def __init__(
        self,
        *,
        schedule: "BeaconSchedule | None" = None,
        burst_gap: float = 300.0,
        min_spurious: int = 1,
    ):
        self._schedule = schedule or BeaconSchedule()
        self._burst_gap = burst_gap
        self._min_spurious = min_spurious

    def detect(
        self, streams: "Dict[tuple, List[Observation]]"
    ) -> "List[ExplorationEvent]":
        """Run detection over grouped streams."""
        events: List[ExplorationEvent] = []
        for key, stream in streams.items():
            events.extend(self._detect_stream(key, stream))
        events.sort(key=lambda event: event.start)
        return events

    def _detect_stream(
        self, key: tuple, stream: "List[Observation]"
    ) -> "List[ExplorationEvent]":
        classifier = UpdateClassifier()
        events: List[ExplorationEvent] = []
        current: Optional[dict] = None
        for observation in stream:
            announcement_type = classifier.observe(observation)
            if observation.is_withdrawal or announcement_type is None:
                continue
            in_withdraw_phase = (
                self._schedule.classify(observation.timestamp)
                == PhaseKind.WITHDRAW
            )
            if announcement_type in (
                AnnouncementType.PC,
                AnnouncementType.PN,
            ):
                self._finish(current, events)
                current = None
                if in_withdraw_phase:
                    current = {
                        "key": key,
                        "start": observation.timestamp,
                        "end": observation.timestamp,
                        "opener": announcement_type,
                        "spurious": 0,
                        "communities": {observation.communities},
                    }
            elif announcement_type.is_spurious:
                if current is not None and (
                    observation.timestamp - current["end"]
                    > self._burst_gap
                ):
                    self._finish(current, events)
                    current = None
                if current is None:
                    # A spurious announcement inside a withdrawal phase
                    # can reopen a burst: the explored path happens to
                    # equal the pre-withdrawal one, so no pc/pn opener
                    # precedes it.
                    if in_withdraw_phase:
                        current = {
                            "key": key,
                            "start": observation.timestamp,
                            "end": observation.timestamp,
                            "opener": announcement_type,
                            "spurious": 0,
                            "communities": {observation.communities},
                        }
                    continue
                current["end"] = observation.timestamp
                current["spurious"] += 1
                current["communities"].add(observation.communities)
            else:
                self._finish(current, events)
                current = None
        self._finish(current, events)
        return events

    def _finish(
        self, current: Optional[dict], events: "List[ExplorationEvent]"
    ) -> None:
        if current is None:
            return
        if current["spurious"] < self._min_spurious:
            return
        events.append(
            ExplorationEvent(
                session=current["key"],
                start=current["start"],
                end=current["end"],
                opener=current["opener"],
                spurious_count=current["spurious"],
                distinct_communities=len(current["communities"]),
            )
        )
