"""Longitudinal aggregation across measurement days (Figures 2 and 6).

The paper samples one full day every three months from 2010 to 2020
(*d_hist*).  Figure 2 plots the per-day announcement counts per type;
Figure 6 plots the per-day number of unique community attributes
revealed during withdrawal phases, the per-day total, and their ratio.

This module only aggregates: per-day snapshots are produced by running
the synthetic internet for the sampled day (see
:mod:`repro.workloads.longitudinal`) and classifying the archives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.classify import AnnouncementType, TYPE_ORDER, TypeCounts
from repro.analysis.revealed import RevealedInfoResult
from repro.netbase.timebase import format_utc


@dataclass
class DailySnapshot:
    """Aggregated results for one sampled measurement day."""

    day: float  # UTC midnight of the sampled day
    type_counts: TypeCounts
    revealed: Optional[RevealedInfoResult] = None

    @property
    def label(self) -> str:
        """The day as ``YYYY-MM-DD``."""
        return format_utc(self.day, with_time=False)

    def announcements_per_type(self) -> "Dict[AnnouncementType, int]":
        """Counts per type, including zero entries."""
        return dict(self.type_counts.counts)


@dataclass
class LongitudinalSeries:
    """An ordered collection of daily snapshots."""

    snapshots: "List[DailySnapshot]" = field(default_factory=list)

    def add(self, snapshot: DailySnapshot) -> None:
        """Append one day (kept sorted by day)."""
        self.snapshots.append(snapshot)
        self.snapshots.sort(key=lambda snap: snap.day)

    # ------------------------------------------------------------------
    # Figure 2: announcements per type over time
    # ------------------------------------------------------------------
    def type_series(
        self,
    ) -> "Dict[AnnouncementType, List[Tuple[str, int]]]":
        """Per-type (day label, count) series."""
        series: Dict[AnnouncementType, List[Tuple[str, int]]] = {
            kind: [] for kind in TYPE_ORDER
        }
        for snapshot in self.snapshots:
            for kind in TYPE_ORDER:
                series[kind].append(
                    (snapshot.label, snapshot.type_counts.counts[kind])
                )
        return series

    def share_series(
        self,
    ) -> "Dict[AnnouncementType, List[Tuple[str, float]]]":
        """Per-type (day label, share) series — scale-free comparison."""
        series: Dict[AnnouncementType, List[Tuple[str, float]]] = {
            kind: [] for kind in TYPE_ORDER
        }
        for snapshot in self.snapshots:
            for kind in TYPE_ORDER:
                series[kind].append(
                    (snapshot.label, snapshot.type_counts.share(kind))
                )
        return series

    # ------------------------------------------------------------------
    # Figure 6: revealed community attributes over time
    # ------------------------------------------------------------------
    def revealed_series(
        self,
    ) -> "List[Tuple[str, int, int, float]]":
        """(day, total unique, withdrawal-exclusive, ratio) rows."""
        rows = []
        for snapshot in self.snapshots:
            if snapshot.revealed is None:
                continue
            revealed = snapshot.revealed
            rows.append(
                (
                    snapshot.label,
                    revealed.total_unique,
                    revealed.exclusively_withdrawal,
                    revealed.withdrawal_ratio,
                )
            )
        return rows

    def ratio_stability(self, *, min_total: int = 1) -> "Tuple[float, float]":
        """(mean, max deviation) of the withdrawal ratio across days.

        The paper's claim is a "stable ratio of about 60%"; the bench
        asserts the deviation stays small.  Days with fewer than
        *min_total* unique attributes are excluded — a ratio computed
        over a handful of attributes is dominated by sampling noise.
        """
        ratios = [
            snap.revealed.withdrawal_ratio
            for snap in self.snapshots
            if snap.revealed is not None
            and snap.revealed.total_unique >= max(min_total, 1)
        ]
        if not ratios:
            return (0.0, 0.0)
        mean = sum(ratios) / len(ratios)
        deviation = max(abs(ratio - mean) for ratio in ratios)
        return (mean, deviation)

    def __len__(self) -> int:
        return len(self.snapshots)

    def __iter__(self):
        return iter(self.snapshots)
