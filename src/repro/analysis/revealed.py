"""§6 "Revealed Information": which communities only surface during
withdrawal-driven path exploration.

The paper labels every beacon announcement by the phase window it falls
into (announce / withdraw / outside, with a 15-minute tolerance) and
asks, for each *unique community attribute*, in which phases it was
ever observed.  On 2020-03-15, 62% of unique community attributes were
revealed **exclusively during withdrawal phases**, 17% exclusively
during announcement phases, <1% exclusively outside, and the rest
ambiguously — and Figure 6 shows the ≈60% ratio is stable over the
decade while absolute counts grow multifold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional, Set

from repro.analysis.observations import Observation
from repro.beacons.schedule import BeaconSchedule, PhaseKind
from repro.bgp.community import CommunitySet


@dataclass
class RevealedInfoResult:
    """Exposure classification of unique community attributes."""

    total_unique: int = 0
    exclusively_withdrawal: int = 0
    exclusively_announcement: int = 0
    exclusively_outside: int = 0
    ambiguous: int = 0

    @property
    def withdrawal_ratio(self) -> float:
        """Share revealed only during withdrawal phases (Fig 6 ratio)."""
        if self.total_unique == 0:
            return 0.0
        return self.exclusively_withdrawal / self.total_unique

    @property
    def announcement_ratio(self) -> float:
        """Share revealed only during announcement phases."""
        if self.total_unique == 0:
            return 0.0
        return self.exclusively_announcement / self.total_unique

    def as_rows(self) -> "list[tuple[str, int, float]]":
        """(label, count, share) rows for rendering."""
        total = max(self.total_unique, 1)
        return [
            ("total unique", self.total_unique, 1.0),
            (
                "exclusively withdrawal",
                self.exclusively_withdrawal,
                self.exclusively_withdrawal / total,
            ),
            (
                "exclusively announcement",
                self.exclusively_announcement,
                self.exclusively_announcement / total,
            ),
            (
                "exclusively outside",
                self.exclusively_outside,
                self.exclusively_outside / total,
            ),
            ("ambiguous", self.ambiguous, self.ambiguous / total),
        ]


class RevealedInfoAnalysis:
    """Accumulates phase exposure per unique community attribute.

    The unit is the full community attribute — the :class:`CommunitySet`
    exactly as announced — matching the paper's "unique community
    attributes".  Empty attributes are ignored (an empty set reveals
    nothing).
    """

    def __init__(self, schedule: "BeaconSchedule | None" = None):
        self._schedule = schedule or BeaconSchedule()
        self._exposure: Dict[CommunitySet, Set[PhaseKind]] = {}

    def observe(self, observation: Observation) -> None:
        """Record one announcement's community attribute."""
        if not observation.is_announcement:
            return
        communities = observation.communities
        if communities.is_empty():
            return
        phase = self._schedule.classify(observation.timestamp)
        self._exposure.setdefault(communities, set()).add(phase)

    def observe_all(self, observations: Iterable[Observation]) -> None:
        """Record a whole feed."""
        for observation in observations:
            self.observe(observation)

    def phases_of(
        self, communities: CommunitySet
    ) -> "Optional[Set[PhaseKind]]":
        """The phases a given attribute was seen in (None = never)."""
        return self._exposure.get(communities)

    def result(self) -> RevealedInfoResult:
        """Summarize exposure into the Figure 6 categories."""
        result = RevealedInfoResult(total_unique=len(self._exposure))
        for phases in self._exposure.values():
            if phases == {PhaseKind.WITHDRAW}:
                result.exclusively_withdrawal += 1
            elif phases == {PhaseKind.ANNOUNCE}:
                result.exclusively_announcement += 1
            elif phases == {PhaseKind.OUTSIDE}:
                result.exclusively_outside += 1
            else:
                result.ambiguous += 1
        return result


def revealed_communities(
    observations: Iterable[Observation],
    schedule: "BeaconSchedule | None" = None,
) -> RevealedInfoResult:
    """One-shot §6 analysis over an observation feed."""
    analysis = RevealedInfoAnalysis(schedule)
    analysis.observe_all(observations)
    return analysis.result()
