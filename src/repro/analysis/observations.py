"""Per-prefix observations and per-session streams.

The paper's unit of analysis is not the UPDATE message (which may carry
several prefixes) but the *(session, prefix)* observation: "we first
group them by the prefix and the BGP session of a peer AS / next-hop,
in arriving order" (§5).  :func:`explode_update` flattens messages,
:func:`group_into_streams` builds the ordered per-key streams every
later stage consumes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Optional

from repro.bgp.aspath import ASPath
from repro.bgp.community import CommunitySet
from repro.bgp.message import UpdateMessage
from repro.mrt.records import Bgp4mpMessage
from repro.netbase.asn import ASN
from repro.netbase.prefix import Prefix


class ObservationKind(enum.Enum):
    """Announcement or withdrawal."""

    ANNOUNCE = "announce"
    WITHDRAW = "withdraw"


@dataclass(frozen=True)
class SessionKey:
    """Identity of one BGP session at one collector."""

    collector: str
    peer_asn: int
    peer_address: str

    def __str__(self) -> str:
        return f"{self.collector}:{self.peer_asn}@{self.peer_address}"


@dataclass(frozen=True)
class Observation:
    """One per-prefix event as seen by a collector session."""

    timestamp: float
    session: SessionKey
    prefix: Prefix
    kind: ObservationKind
    as_path: Optional[ASPath] = None
    communities: CommunitySet = CommunitySet.empty()
    med: Optional[int] = None

    @property
    def is_announcement(self) -> bool:
        """True for announcements."""
        return self.kind == ObservationKind.ANNOUNCE

    @property
    def is_withdrawal(self) -> bool:
        """True for withdrawals."""
        return self.kind == ObservationKind.WITHDRAW

    def stream_key(self) -> "tuple[SessionKey, Prefix]":
        """The (session, prefix) grouping key of §5."""
        return (self.session, self.prefix)

    def shifted(self, new_timestamp: float) -> "Observation":
        """Copy with a different timestamp (cleaning pipeline)."""
        return replace(self, timestamp=new_timestamp)

    def with_as_path(self, as_path: ASPath) -> "Observation":
        """Copy with a repaired AS path (route-server fix-up)."""
        return replace(self, as_path=as_path)


def explode_update(
    timestamp: float,
    session: SessionKey,
    message: UpdateMessage,
) -> Iterator[Observation]:
    """Flatten one UPDATE into per-prefix observations.

    Withdrawals come first, matching wire order within a message.
    """
    for prefix in message.withdrawn:
        yield Observation(
            timestamp=timestamp,
            session=session,
            prefix=prefix,
            kind=ObservationKind.WITHDRAW,
        )
    if message.announced:
        attributes = message.attributes
        assert attributes is not None
        for prefix in message.announced:
            yield Observation(
                timestamp=timestamp,
                session=session,
                prefix=prefix,
                kind=ObservationKind.ANNOUNCE,
                as_path=attributes.as_path,
                communities=attributes.communities,
                med=attributes.med,
            )


def observations_from_collector(collector) -> Iterator[Observation]:
    """Observations from a simulated collector archive (arrival order)."""
    for record in collector.records:
        if not isinstance(record.message, UpdateMessage):
            continue
        session = SessionKey(
            collector=record.collector,
            peer_asn=int(record.peer_asn),
            peer_address=record.peer_address,
        )
        yield from explode_update(record.timestamp, session, record.message)


def observations_from_mrt(
    records: Iterable[Bgp4mpMessage], collector: str
) -> Iterator[Observation]:
    """Observations from MRT records (e.g. a parsed archive file)."""
    for record in records:
        if not isinstance(record.message, UpdateMessage):
            continue
        session = SessionKey(
            collector=collector,
            peer_asn=int(record.peer_asn),
            peer_address=record.peer_address,
        )
        yield from explode_update(record.timestamp, session, record.message)


class StreamGrouper:
    """Incremental (session, prefix) grouper — the online form of
    :func:`group_into_streams`.

    Push observations in arrival order; :attr:`streams` is always the
    grouping of everything seen so far, so a live pipeline can inspect
    per-stream state mid-run instead of waiting for the feed to end.
    Usable directly as a pipeline sink (``push``/``close``).
    """

    def __init__(self):
        self.streams: "Dict[tuple, List[Observation]]" = {}
        self.observations = 0

    def push(self, observation: Observation) -> "tuple":
        """Add one observation; returns its stream key."""
        key = observation.stream_key()
        self.streams.setdefault(key, []).append(observation)
        self.observations += 1
        return key

    def close(self) -> None:
        """Pipeline sink hook; grouping state needs no finalization."""

    def stream(self, key: "tuple") -> "List[Observation]":
        """One stream's observations so far (empty if unseen)."""
        return self.streams.get(key, [])


def group_into_streams(
    observations: Iterable[Observation],
) -> "Dict[tuple, List[Observation]]":
    """Group observations by (session, prefix), preserving order.

    The input must already be in arrival order (collector archives and
    MRT files are); each output list is then automatically ordered.
    Batch wrapper over :class:`StreamGrouper`.
    """
    grouper = StreamGrouper()
    for observation in observations:
        grouper.push(observation)
    return grouper.streams


def peer_ases(observations: Iterable[Observation]) -> "set[ASN]":
    """Distinct peer ASNs across observations."""
    return {ASN(obs.session.peer_asn) for obs in observations}


def sessions_of(observations: Iterable[Observation]) -> "set[SessionKey]":
    """Distinct sessions across observations."""
    return {obs.session for obs in observations}
