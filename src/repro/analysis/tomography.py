"""Per-AS community-behavior inference ("network tomography").

The paper's §7 sketches this as future work:

    "from observing updates and lack of updates at multiple points in
     the network, we can make rough guesses as to the way different
     ASes handle communities.  Using more sophisticated network
     tomography techniques, we plan to classify per-AS community
     behavior, for instance those that tag, filter, and ignore."

This module implements that classification over collector
observations.  For every AS it aggregates evidence across all streams
whose AS path traverses it:

* **tagger** — communities administered by the AS appear on routes the
  AS did not originate (its ASN occurs mid-path with its own tags
  attached downstream);
* **cleaner** — announcements arriving *through* the AS at the
  collector systematically carry no communities although sibling
  streams for the same prefixes (not via the AS) do;
* **ignorer** — foreign communities survive passage through the AS.

The synthetic internet knows each AS's ground-truth practice, so the
integration tests score the inference like the paper would: precision
over the inferable population.
"""

from __future__ import annotations

import enum
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set

from repro.analysis.observations import Observation
from repro.netbase.asn import ASN


class InferredBehavior(enum.Enum):
    """The paper's tag / filter / ignore trichotomy."""

    TAGGER = "tagger"
    CLEANER = "cleaner"
    IGNORER = "ignorer"
    UNKNOWN = "unknown"


@dataclass
class ASEvidence:
    """Aggregated observations for one AS."""

    asn: int
    #: Announcements whose path traverses this AS (not as origin).
    transit_announcements: int = 0
    #: ... of which carried at least one community of *any* AS.
    with_any_communities: int = 0
    #: ... of which carried a community administered by this AS.
    with_own_communities: int = 0
    #: ... of which carried a community of an AS *deeper* in the path
    #: (i.e. a foreign tag that survived passage through this AS).
    with_upstream_communities: int = 0
    #: Announcements where this AS was the collector-adjacent peer.
    peer_announcements: int = 0
    peer_with_communities: int = 0

    def merge(self, other: "ASEvidence") -> None:
        """Accumulate *other*'s counts (same ASN)."""
        self.transit_announcements += other.transit_announcements
        self.with_any_communities += other.with_any_communities
        self.with_own_communities += other.with_own_communities
        self.with_upstream_communities += other.with_upstream_communities
        self.peer_announcements += other.peer_announcements
        self.peer_with_communities += other.peer_with_communities


@dataclass
class BehaviorInference:
    """The verdict for one AS plus its supporting ratios."""

    asn: int
    behavior: InferredBehavior
    own_tag_ratio: float
    upstream_survival_ratio: float
    sample_size: int

    def __str__(self) -> str:
        return (
            f"AS{self.asn}: {self.behavior.value} "
            f"(own={self.own_tag_ratio:.2f},"
            f" survive={self.upstream_survival_ratio:.2f},"
            f" n={self.sample_size})"
        )


class CommunityBehaviorClassifier:
    """Infers tag/filter/ignore behavior per AS from a feed.

    Thresholds are deliberately simple and documented: an AS is a
    *tagger* when its own communities ride on ≥ ``tag_threshold`` of
    the transit announcements through it; a *cleaner* when upstream
    communities survive on ≤ ``clean_threshold`` of them; otherwise an
    *ignorer*.  ASes with fewer than ``min_samples`` transit
    announcements stay *unknown*.
    """

    def __init__(
        self,
        *,
        tag_threshold: float = 0.30,
        clean_threshold: float = 0.10,
        min_samples: int = 20,
    ):
        if clean_threshold >= 1.0 or tag_threshold >= 1.0:
            raise ValueError("thresholds are ratios in [0, 1)")
        self._tag_threshold = tag_threshold
        self._clean_threshold = clean_threshold
        self._min_samples = min_samples
        self._evidence: Dict[int, ASEvidence] = {}

    # ------------------------------------------------------------------
    # evidence collection
    # ------------------------------------------------------------------
    def observe(self, observation: Observation) -> None:
        """Accumulate one announcement's evidence."""
        if not observation.is_announcement or observation.as_path is None:
            return
        path = observation.as_path.distinct_ases()
        if len(path) < 2:
            return
        communities = observation.communities
        community_owners: Set[int] = {
            community.asn for community in communities.classic
        } | {
            community.global_admin for community in communities.large
        }
        # Walk transit positions (everyone but the origin).
        for position, asn in enumerate(path[:-1]):
            evidence = self._evidence_for(int(asn))
            evidence.transit_announcements += 1
            if communities:
                evidence.with_any_communities += 1
            own = (int(asn) & 0xFFFF) in community_owners
            if own:
                evidence.with_own_communities += 1
            # Communities owned by ASes strictly deeper in the path
            # (closer to the origin) must have crossed this AS.
            deeper = {
                int(deeper_asn) & 0xFFFF
                for deeper_asn in path[position + 1 :]
            }
            if community_owners & deeper:
                evidence.with_upstream_communities += 1
        # Collector-adjacent peer statistics.
        peer_evidence = self._evidence_for(
            int(observation.session.peer_asn)
        )
        peer_evidence.peer_announcements += 1
        if communities:
            peer_evidence.peer_with_communities += 1

    def observe_all(self, observations: Iterable[Observation]) -> None:
        """Accumulate a whole feed."""
        for observation in observations:
            self.observe(observation)

    def _evidence_for(self, asn: int) -> ASEvidence:
        evidence = self._evidence.get(asn)
        if evidence is None:
            evidence = ASEvidence(asn=asn)
            self._evidence[asn] = evidence
        return evidence

    # ------------------------------------------------------------------
    # inference
    # ------------------------------------------------------------------
    def infer(self, asn: int) -> BehaviorInference:
        """Classify one AS from the accumulated evidence."""
        evidence = self._evidence.get(int(asn))
        if (
            evidence is None
            or evidence.transit_announcements < self._min_samples
        ):
            samples = (
                0 if evidence is None else evidence.transit_announcements
            )
            return BehaviorInference(
                int(asn), InferredBehavior.UNKNOWN, 0.0, 0.0, samples
            )
        own_ratio = (
            evidence.with_own_communities
            / evidence.transit_announcements
        )
        # Survival is judged against announcements that *could* carry
        # upstream tags: those with any community at all anywhere on
        # sibling streams is unobservable per-AS, so we use the AS's
        # own transit set as the denominator.
        survival_ratio = (
            evidence.with_upstream_communities
            / evidence.transit_announcements
        )
        if own_ratio >= self._tag_threshold:
            behavior = InferredBehavior.TAGGER
        elif survival_ratio <= self._clean_threshold:
            behavior = InferredBehavior.CLEANER
        else:
            behavior = InferredBehavior.IGNORER
        return BehaviorInference(
            int(asn),
            behavior,
            own_ratio,
            survival_ratio,
            evidence.transit_announcements,
        )

    def infer_all(self) -> "List[BehaviorInference]":
        """Classify every AS with evidence, most-sampled first."""
        inferences = [self.infer(asn) for asn in self._evidence]
        inferences.sort(key=lambda item: -item.sample_size)
        return inferences

    def evidence_for(self, asn: int) -> Optional[ASEvidence]:
        """Raw evidence for one AS (None when never observed)."""
        return self._evidence.get(int(asn))


def score_against_ground_truth(
    inferences: "List[BehaviorInference]",
    ground_truth: "Dict[int, str]",
) -> "Dict[str, float]":
    """Score inference quality against known practices.

    *ground_truth* maps ASN → practice name (``tagger``,
    ``cleaner_egress``, ``cleaner_ingress``, ``ignorer``), as recorded
    by the synthetic internet.  Both cleaner variants count as
    ``cleaner``.  Returns per-class precision plus overall accuracy
    over the classified (non-unknown) population.
    """
    def truth_of(asn: int) -> Optional[InferredBehavior]:
        practice = ground_truth.get(asn)
        if practice is None:
            return None
        if practice == "tagger":
            return InferredBehavior.TAGGER
        if practice.startswith("cleaner"):
            return InferredBehavior.CLEANER
        return InferredBehavior.IGNORER

    correct = defaultdict(int)
    predicted = defaultdict(int)
    total_correct = 0
    total_classified = 0
    for inference in inferences:
        if inference.behavior == InferredBehavior.UNKNOWN:
            continue
        truth = truth_of(inference.asn)
        if truth is None:
            continue
        total_classified += 1
        predicted[inference.behavior] += 1
        if inference.behavior == truth:
            correct[inference.behavior] += 1
            total_correct += 1
    scores: Dict[str, float] = {}
    for behavior in (
        InferredBehavior.TAGGER,
        InferredBehavior.CLEANER,
        InferredBehavior.IGNORER,
    ):
        if predicted[behavior]:
            scores[f"precision_{behavior.value}"] = (
                correct[behavior] / predicted[behavior]
            )
    scores["accuracy"] = (
        total_correct / total_classified if total_classified else 0.0
    )
    scores["classified"] = float(total_classified)
    return scores
