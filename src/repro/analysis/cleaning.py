"""The §4 data-preparation pipeline.

    "Using current and historical allocation information from the
     regional registries, we remove BGP messages that contain an
     unallocated ASN or prefix at the time of the message. [...] we add
     the ASN of the route server to the AS path.  Finally, some BGP
     collectors only record messages at the single second granularity.
     When multiple messages arrive in the same second [...] we preserve
     the message ordering and assume that each subsequent message
     arrives 0.01ms after the last."

The pipeline operates on ordered observation feeds and is pure: it
yields new observations and a :class:`CleaningReport` of what it did.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Protocol

from repro.analysis.observations import Observation
from repro.netbase.asn import AS_TRANS, ASN
from repro.netbase.memo import bounded_store, memo_counters
from repro.netbase.prefix import Prefix

#: The paper's disambiguation step: 0.01 ms.
SAME_SECOND_STEP = 0.00001

#: Bound for the per-pipeline AS-path memo (cleared wholesale).
_PATH_MEMO_LIMIT = 65536

#: The scan memos are per-pipeline; their effectiveness counters are
#: process-wide like every other named memo's.
_PATH_INFO_STATS = memo_counters("cleaning.path_info")
_PEER_INFO_STATS = memo_counters("cleaning.peer_info")


class AllocationOracle(Protocol):
    """What the pipeline needs to know about registry history."""

    def asn_allocated(self, asn: int, when: float) -> bool:
        """Was *asn* allocated at time *when*?"""
        ...

    def prefix_allocated(self, prefix: Prefix, when: float) -> bool:
        """Was *prefix* (or a covering block) allocated at *when*?"""
        ...


class AcceptEverything:
    """Oracle that treats all resources as allocated (no registry)."""

    def asn_allocated(self, asn: int, when: float) -> bool:
        return True

    def prefix_allocated(self, prefix: Prefix, when: float) -> bool:
        return True


@dataclass
class CleaningReport:
    """What the pipeline removed or repaired."""

    input_observations: int = 0
    output_observations: int = 0
    dropped_unallocated_asn: int = 0
    dropped_unallocated_prefix: int = 0
    dropped_reserved_asn: int = 0
    dropped_long_prefix: int = 0
    repaired_route_server_paths: int = 0
    disambiguated_timestamps: int = 0
    route_server_peers: "set" = field(default_factory=set)

    @property
    def dropped_total(self) -> int:
        """All removed observations."""
        return (
            self.dropped_unallocated_asn
            + self.dropped_unallocated_prefix
            + self.dropped_reserved_asn
            + self.dropped_long_prefix
        )

    def summary(self) -> str:
        """One-line human-readable report."""
        return (
            f"cleaned {self.input_observations} -> "
            f"{self.output_observations} observations "
            f"(dropped {self.dropped_total}, repaired "
            f"{self.repaired_route_server_paths} route-server paths, "
            f"disambiguated {self.disambiguated_timestamps} timestamps)"
        )


class CleaningPipeline:
    """Configurable implementation of the §4 preparation steps."""

    def __init__(
        self,
        *,
        oracle: Optional[AllocationOracle] = None,
        drop_reserved_asns: bool = True,
        max_prefix_length_v4: Optional[int] = None,
        repair_route_server_paths: bool = True,
        disambiguate_same_second: bool = True,
        same_second_step: float = SAME_SECOND_STEP,
    ):
        self._oracle = oracle or AcceptEverything()
        self._drop_reserved = drop_reserved_asns
        self._max_length_v4 = max_prefix_length_v4
        self._repair_route_servers = repair_route_server_paths
        self._disambiguate = disambiguate_same_second
        self._step = same_second_step
        # Hot-path memos.  The oracle fast path only fires for the
        # exact no-registry class (a subclass may override per-time
        # behavior); the AS-path memo keys on the interned path objects
        # the decode layer hands us, so the reserved/involved scan runs
        # once per distinct path instead of once per observation.
        self._oracle_accepts_all = type(self._oracle) is AcceptEverything
        self._path_info: dict = {}  # ASPath -> (distinct asns, flagged)
        self._peer_info: dict = {}  # int -> (ASN, flagged)

    def run(
        self, observations: Iterable[Observation]
    ) -> "tuple[List[Observation], CleaningReport]":
        """Apply every enabled step; returns (cleaned, report).

        Batch wrapper over :meth:`stream` — results are bit-identical
        because every step is a single order-preserving pass.
        """
        report = CleaningReport()
        cleaned = list(self.stream(observations, report))
        return cleaned, report

    def stream(
        self,
        observations: Iterable[Observation],
        report: "Optional[CleaningReport]" = None,
    ) -> Iterator[Observation]:
        """Incrementally clean an ordered feed, one observation at a
        time (bounded memory: state is one timestamp per in-flight
        whole second).  *report* is updated as observations flow, so a
        live pipeline can inspect it mid-run."""
        if report is None:
            report = CleaningReport()
        last_by_second: dict = {}
        for observation in observations:
            report.input_observations += 1
            result = self._clean_one(observation, report)
            if result is None:
                continue
            if self._disambiguate:
                result = self._disambiguate_one(
                    result, last_by_second, report
                )
            report.output_observations += 1
            yield result

    def sink(
        self,
        downstream,
        report: "Optional[CleaningReport]" = None,
    ) -> "CleaningSink":
        """A push-based form of :meth:`stream` for sink pipelines."""
        return CleaningSink(self, downstream, report=report)

    def _clean_one(
        self, observation: Observation, report: CleaningReport
    ) -> Optional[Observation]:
        when = observation.timestamp
        if (
            self._max_length_v4 is not None
            and observation.prefix.version == 4
            and observation.prefix.length > self._max_length_v4
        ):
            report.dropped_long_prefix += 1
            return None
        if not self._oracle_accepts_all and not self._oracle.prefix_allocated(
            observation.prefix, when
        ):
            report.dropped_unallocated_prefix += 1
            return None
        as_path = observation.as_path
        if as_path is not None:
            path_info = self._path_info.get(as_path)
            if path_info is None:
                distinct = frozenset(as_path.asns())
                flagged = any(
                    asn.is_reserved or asn == AS_TRANS for asn in distinct
                )
                path_info = bounded_store(
                    self._path_info, as_path, (distinct, flagged),
                    _PATH_MEMO_LIMIT, _PATH_INFO_STATS,
                )
            else:
                _PATH_INFO_STATS.hits += 1
            path_asns, path_flagged = path_info
        else:
            path_asns, path_flagged = (), False
        peer_info = self._peer_info.get(observation.session.peer_asn)
        if peer_info is None:
            peer = ASN(observation.session.peer_asn)
            peer_info = bounded_store(
                self._peer_info,
                int(peer),
                (peer, bool(peer.is_reserved or peer == AS_TRANS)),
                _PATH_MEMO_LIMIT, _PEER_INFO_STATS,
            )
        else:
            _PEER_INFO_STATS.hits += 1
        peer, peer_flagged = peer_info
        if self._drop_reserved and (path_flagged or peer_flagged):
            report.dropped_reserved_asn += 1
            return None
        if not self._oracle_accepts_all and (
            not self._oracle.asn_allocated(int(peer), when)
            or any(
                not self._oracle.asn_allocated(int(asn), when)
                for asn in path_asns
            )
        ):
            report.dropped_unallocated_asn += 1
            return None
        if (
            self._repair_route_servers
            and observation.is_announcement
            and as_path is not None
            and not as_path.is_empty()
        ):
            if observation.as_path.first_asn != peer:
                report.repaired_route_server_paths += 1
                report.route_server_peers.add(observation.session)
                return observation.with_as_path(
                    observation.as_path.prepend(peer)
                )
        return observation

    # ------------------------------------------------------------------
    # timestamp disambiguation
    # ------------------------------------------------------------------
    def _disambiguate_one(
        self,
        observation: Observation,
        last_by_second: dict,
        report: CleaningReport,
    ) -> Observation:
        """Spread same-second arrivals by the configured step.

        Input order is preserved; only timestamps recorded at
        whole-second granularity are touched.  Messages that already
        carry sub-second precision are assumed disambiguated by the
        collector.
        """
        timestamp = observation.timestamp
        if timestamp != int(timestamp):
            return observation
        key = (observation.session.collector, int(timestamp))
        previous = last_by_second.get(key)
        if previous is None:
            last_by_second[key] = timestamp
            return observation
        adjusted = previous + self._step
        last_by_second[key] = adjusted
        report.disambiguated_timestamps += 1
        return observation.shifted(adjusted)


class CleaningSink:
    """Push-based cleaning stage: clean each observation as it
    arrives and forward survivors downstream."""

    def __init__(
        self,
        pipeline: CleaningPipeline,
        downstream,
        *,
        report: "Optional[CleaningReport]" = None,
    ):
        self._pipeline = pipeline
        self.downstream = downstream
        self.report = report if report is not None else CleaningReport()
        self._last_by_second: dict = {}

    def push(self, observation: Observation) -> None:
        pipeline = self._pipeline
        self.report.input_observations += 1
        result = pipeline._clean_one(observation, self.report)
        if result is None:
            return
        if pipeline._disambiguate:
            result = pipeline._disambiguate_one(
                result, self._last_by_second, self.report
            )
        self.report.output_observations += 1
        self.downstream.push(result)

    def close(self) -> None:
        self.downstream.close()
