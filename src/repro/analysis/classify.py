"""The §5 announcement-type taxonomy: ``pc pn nc nn xc xn``.

Each announcement is compared with the previous announcement for the
same (session, prefix) stream.  Two letters encode the result:

* first letter — the AS path: ``p`` changed, ``x`` changed only by
  prepending (same distinct-AS sequence), ``n`` unchanged;
* second letter — the community attribute: ``c`` changed, ``n``
  unchanged.

The paper folds the (rare) prepend+no-community-change and
prepend+community-change cases into ``xn``/``xc`` and does not split
``x`` further.  Withdrawals reset nothing: the paper compares each
announcement to the previous *announcement* on the stream (an
announcement following a withdrawal is an implicit re-announcement and
still compares against the pre-withdrawal state); the first
announcement ever seen on a stream has no predecessor and is excluded
from the statistics.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.analysis.observations import Observation
from repro.bgp.aspath import ASPath
from repro.bgp.community import CommunitySet


class AnnouncementType(enum.Enum):
    """The six announcement types of Table 2."""

    PC = "pc"  # path + community change
    PN = "pn"  # path change only
    NC = "nc"  # community change only
    NN = "nn"  # no change (duplicate at the message level)
    XC = "xc"  # prepend-only path change + community change
    XN = "xn"  # prepend-only path change

    @property
    def path_changed(self) -> bool:
        """True when the AS path changed beyond prepending."""
        return self in (AnnouncementType.PC, AnnouncementType.PN)

    @property
    def prepend_only(self) -> bool:
        """True when the path changed only by prepending."""
        return self in (AnnouncementType.XC, AnnouncementType.XN)

    @property
    def community_changed(self) -> bool:
        """True when the community attribute changed."""
        return self in (
            AnnouncementType.PC,
            AnnouncementType.NC,
            AnnouncementType.XC,
        )

    @property
    def is_spurious(self) -> bool:
        """The types that carry no routing-relevant change (§6)."""
        return self in (AnnouncementType.NC, AnnouncementType.NN)


#: Display order used by Table 2 and the figures.
TYPE_ORDER = (
    AnnouncementType.PC,
    AnnouncementType.PN,
    AnnouncementType.NC,
    AnnouncementType.NN,
    AnnouncementType.XC,
    AnnouncementType.XN,
)


def compare_announcements(
    previous_path: Optional[ASPath],
    previous_communities: CommunitySet,
    path: Optional[ASPath],
    communities: CommunitySet,
) -> AnnouncementType:
    """Classify one announcement against its predecessor's state.

    Identity is checked before equality throughout: the decode memo
    interns repeated AS_PATH/COMMUNITIES byte strings to the same
    objects, so on real feeds the dominant duplicate case resolves with
    pointer comparisons (``a is b`` implies ``a == b`` for these
    immutable values).
    """
    current_path = path if path is not None else ASPath.empty()
    prior_path = (
        previous_path if previous_path is not None else ASPath.empty()
    )
    community_changed = (
        communities is not previous_communities
        and communities != previous_communities
    )
    if current_path is prior_path or current_path == prior_path:
        return (
            AnnouncementType.NC if community_changed else AnnouncementType.NN
        )
    if current_path.is_prepend_variant_of(prior_path):
        return (
            AnnouncementType.XC if community_changed else AnnouncementType.XN
        )
    return AnnouncementType.PC if community_changed else AnnouncementType.PN


@dataclass
class ClassifiedAnnouncement:
    """One announcement with its assigned type."""

    observation: Observation
    announcement_type: AnnouncementType


@dataclass
class TypeCounts:
    """Counts per announcement type plus bookkeeping totals."""

    counts: Dict[AnnouncementType, int] = field(
        default_factory=lambda: {kind: 0 for kind in AnnouncementType}
    )
    #: First-on-stream announcements (no predecessor, not classified).
    unclassified_first: int = 0
    withdrawals: int = 0

    def add(self, announcement_type: AnnouncementType) -> None:
        """Count one classified announcement."""
        self.counts[announcement_type] += 1

    def merge(self, other: "TypeCounts") -> "TypeCounts":
        """Accumulate *other* into self (returns self for chaining)."""
        for kind, value in other.counts.items():
            self.counts[kind] += value
        self.unclassified_first += other.unclassified_first
        self.withdrawals += other.withdrawals
        return self

    @property
    def classified_total(self) -> int:
        """Announcements that received a type."""
        return sum(self.counts.values())

    @property
    def announcements_total(self) -> int:
        """All announcements including first-on-stream ones."""
        return self.classified_total + self.unclassified_first

    def share(self, announcement_type: AnnouncementType) -> float:
        """Fraction of classified announcements with this type."""
        total = self.classified_total
        if total == 0:
            return 0.0
        return self.counts[announcement_type] / total

    def shares(self) -> "Dict[AnnouncementType, float]":
        """All six shares, in one dict."""
        return {kind: self.share(kind) for kind in TYPE_ORDER}

    def no_path_change_share(self) -> float:
        """Combined nc+nn share — the paper's headline ~50%."""
        return self.share(AnnouncementType.NC) + self.share(
            AnnouncementType.NN
        )

    def as_rows(self) -> "List[Tuple[str, int, float]]":
        """(type, count, share) rows in display order."""
        return [
            (kind.value, self.counts[kind], self.share(kind))
            for kind in TYPE_ORDER
        ]

    def to_dict(self) -> dict:
        """JSON-serializable form for the sharded-decode protocol."""
        return {
            "counts": {kind.value: self.counts[kind] for kind in TYPE_ORDER},
            "unclassified_first": self.unclassified_first,
            "withdrawals": self.withdrawals,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TypeCounts":
        counts = cls()
        for kind in TYPE_ORDER:
            counts.counts[kind] = int(data["counts"].get(kind.value, 0))
        counts.unclassified_first = int(data["unclassified_first"])
        counts.withdrawals = int(data["withdrawals"])
        return counts


class UpdateClassifier:
    """Stateful per-stream classifier.

    Feed observations in arrival order via :meth:`observe`; the
    classifier keeps the last-seen announcement state per
    (session, prefix) stream and emits a type per announcement.
    """

    #: Sharded-decode job protocol tag; the parallel replay layer
    #: rebuilds a fresh classifier per shard from this name.
    shard_sink_kind = "classifier"

    def __init__(self):
        self._last_state: Dict[tuple, "tuple[Optional[ASPath], CommunitySet]"] = {}
        self.counts = TypeCounts()

    def seed_from_snapshot(self, snapshot, collector: str) -> int:
        """Pre-load stream state from a TABLE_DUMP_V2 RIB snapshot.

        Real measurement pipelines classify a day's update file against
        the RIB snapshot taken at the start of the day, so the first
        announcement on each stream has a predecessor instead of being
        unclassifiable.  *snapshot* is a
        :class:`repro.mrt.table_dump.RibSnapshot`.  Returns the number
        of streams seeded.
        """
        from repro.analysis.observations import SessionKey

        seeded = 0
        for prefix in snapshot.prefixes():
            for entry in snapshot.entries(prefix):
                peer_asn, peer_address = snapshot.peers[entry.peer_index]
                session = SessionKey(collector, peer_asn, peer_address)
                key = (session, prefix)
                if key in self._last_state:
                    continue
                self._last_state[key] = (
                    entry.attributes.as_path,
                    entry.attributes.communities,
                )
                seeded += 1
        return seeded

    def observe(
        self, observation: Observation, key: "Optional[tuple]" = None
    ) -> Optional[AnnouncementType]:
        """Process one observation; returns the type for announcements.

        Withdrawals return None (they are counted but not typed —
        the paper's taxonomy covers announcements only).  Callers that
        already computed the (session, prefix) stream key may pass it
        to avoid recomputing it (the duplicate attributor does).
        """
        if observation.is_withdrawal:
            self.counts.withdrawals += 1
            return None
        if key is None:
            key = observation.stream_key()
        path = observation.as_path
        communities = observation.communities
        previous = self._last_state.get(key)
        self._last_state[key] = (path, communities)
        if previous is None:
            self.counts.unclassified_first += 1
            return None
        if previous[0] is path and previous[1] is communities:
            # O(1) fast path: the interned decode objects are the very
            # ones stored last time, so this is an exact duplicate.
            announcement_type = AnnouncementType.NN
        else:
            announcement_type = compare_announcements(
                previous[0], previous[1], path, communities
            )
        self.counts.counts[announcement_type] += 1
        return announcement_type

    def observe_all(
        self, observations: Iterable[Observation]
    ) -> Iterator[ClassifiedAnnouncement]:
        """Classify a whole feed, yielding classified announcements."""
        for observation in observations:
            announcement_type = self.observe(observation)
            if announcement_type is not None:
                yield ClassifiedAnnouncement(observation, announcement_type)

    # ------------------------------------------------------------------
    # pipeline sink protocol
    # ------------------------------------------------------------------
    def push(self, observation: Observation) -> None:
        """Sink hook: classify one pushed observation.

        :meth:`observe` was always online; exposing it under the
        pipeline's ``push``/``close`` names lets a classifier terminate
        a live sink chain directly (collector → exploder → classifier)
        with no adapter object.
        """
        self.observe(observation)

    def close(self) -> None:
        """Sink hook; classification state needs no finalization."""

    # ------------------------------------------------------------------
    # sharded-decode merge protocol
    # ------------------------------------------------------------------
    def export_state(self) -> dict:
        """Serialize the mergeable classification state as JSON data.

        Only the counts travel: the per-stream ``_last_state`` never
        needs to cross shards because the shard planner keeps every
        (session, prefix) stream whole within one shard.
        """
        return {"counts": self.counts.to_dict()}

    def merge_state(self, state: dict) -> None:
        """Accumulate one shard's exported state, in shard order."""
        self.counts.merge(TypeCounts.from_dict(state["counts"]))


def classify_observations(
    observations: Iterable[Observation],
) -> TypeCounts:
    """One-shot classification of an ordered observation feed."""
    classifier = UpdateClassifier()
    for _ in classifier.observe_all(observations):
        pass
    return classifier.counts


def classify_stream(
    stream: "List[Observation]",
) -> "List[ClassifiedAnnouncement]":
    """Classify a single (session, prefix) stream, returning labels."""
    classifier = UpdateClassifier()
    return list(classifier.observe_all(stream))
