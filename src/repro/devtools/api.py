"""The pytest-importable entry points of the contract linter.

:func:`run_check` is the whole pipeline — expand paths, parse once,
run the selected checkers, apply suppressions then the baseline, sort
— and both the CLI and the test suite call it, so what CI enforces is
exactly what a test can assert.  :func:`check_source` runs the same
pipeline over one in-memory snippet placed at a chosen
package-relative path; the fixture suites are built on it.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.devtools.checkers import (
    ALL_CHECKERS,
    CHECKERS_BY_CODE,
    KNOWN_CODES,
    Checker,
)
from repro.devtools.findings import CheckReport, Finding, sort_findings
from repro.devtools.project import (
    Project,
    SourceModule,
    iter_python_files,
    load_module,
    parse_module,
)
from repro.devtools.suppress import (
    Baseline,
    apply_baseline,
    apply_suppressions,
    empty_baseline,
    parse_suppressions,
)


class UsageError(ValueError):
    """Bad invocation (unknown code, missing path): CLI exit 2."""


def resolve_select(
    select: "Optional[Iterable[str]]",
) -> "Tuple[Checker, ...]":
    """The checker set for a ``--select`` value (None = all)."""
    if select is None:
        return ALL_CHECKERS
    chosen: "List[Checker]" = []
    for code in select:
        normalized = code.strip().upper()
        if not normalized:
            continue
        if normalized not in CHECKERS_BY_CODE:
            raise UsageError(
                f"unknown checker code {normalized!r}; known:"
                f" {', '.join(KNOWN_CODES)}"
            )
        checker = CHECKERS_BY_CODE[normalized]
        if checker not in chosen:
            chosen.append(checker)
    if not chosen:
        raise UsageError("--select named no checkers")
    return tuple(chosen)


def check_modules(
    modules: "Sequence[SourceModule]",
    checkers: "Sequence[Checker]" = ALL_CHECKERS,
    baseline: "Optional[Baseline]" = None,
) -> CheckReport:
    """Run *checkers* over already-parsed *modules*."""
    if baseline is None:
        baseline = empty_baseline()
    selected_codes = {checker.code for checker in checkers}
    project = Project(modules=list(modules))
    findings: "List[Finding]" = []
    suppressed_total = 0
    for module in project.modules:
        suppressions, problems = parse_suppressions(
            module.source, set(KNOWN_CODES), module.path
        )
        module_findings: "List[Finding]" = [
            problem for problem in problems
            if "SUP001" in selected_codes
        ]
        for checker in checkers:
            module_findings.extend(checker.check(module))
        kept, dropped = apply_suppressions(module_findings, suppressions)
        suppressed_total += dropped
        findings.extend(kept)
    project_findings: "List[Finding]" = []
    for checker in checkers:
        project_findings.extend(checker.finalize(project))
    # Project-level findings honor suppressions on their anchor line
    # in the module they point at.
    for finding in project_findings:
        module = next(
            (m for m in project.modules if m.path == finding.path), None
        )
        if module is not None:
            suppressions, _ = parse_suppressions(
                module.source, set(KNOWN_CODES), module.path
            )
            kept, dropped = apply_suppressions([finding], suppressions)
            suppressed_total += dropped
            findings.extend(kept)
        else:
            findings.append(finding)
    findings = sort_findings(findings)
    findings, baselined = apply_baseline(findings, baseline)
    return CheckReport(
        findings=findings,
        suppressed=suppressed_total,
        baselined=baselined,
        files_scanned=len(project.modules),
        codes=sorted(selected_codes),
    )


def run_check(
    paths: "Sequence[str]",
    select: "Optional[Iterable[str]]" = None,
    baseline: "Optional[Baseline]" = None,
) -> CheckReport:
    """Lint *paths* (files and/or directories) and report.

    Raises :class:`UsageError` for unknown codes or missing paths.
    """
    checkers = resolve_select(select)
    try:
        files = list(iter_python_files(tuple(paths)))
    except FileNotFoundError as exc:
        raise UsageError(f"no such file or directory: {exc.args[0]}")
    modules = [load_module(path) for path in files]
    return check_modules(modules, checkers, baseline)


def check_source(
    source: str,
    rel: str,
    select: "Optional[Iterable[str]]" = None,
    path: "Optional[str]" = None,
    extra_modules: "Optional[Sequence[Tuple[str, str]]]" = None,
) -> CheckReport:
    """Lint one in-memory snippet as if it lived at ``repro/<rel>``.

    *extra_modules* adds more ``(rel, source)`` snippets to the same
    project — how the CACHE001 fixtures assemble a miniature
    serialize/engine/runner trio.
    """
    modules = [parse_module(path or rel, source, rel=rel)]
    for extra_rel, extra_source in extra_modules or ():
        modules.append(
            parse_module(extra_rel, extra_source, rel=extra_rel)
        )
    return check_modules(modules, resolve_select(select))


def explain(code: str) -> str:
    """The rationale text behind one checker code."""
    normalized = code.strip().upper()
    checker = CHECKERS_BY_CODE.get(normalized)
    if checker is None:
        raise UsageError(
            f"unknown checker code {code!r}; known:"
            f" {', '.join(KNOWN_CODES)}"
        )
    return (
        f"{checker.code} — {checker.title}\n\n{checker.explain}"
    )


def catalog() -> "List[Tuple[str, str]]":
    """(code, title) pairs for every checker, in code order."""
    return [
        (code, CHECKERS_BY_CODE[code].title) for code in KNOWN_CODES
    ]
