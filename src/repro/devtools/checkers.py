"""The contract checkers: one class per bug the repo already shipped.

Every code encodes a *historical* failure mode, not a style opinion —
the ``explain`` text names the incident.  Checkers are deliberately
syntactic: they flag the pattern, and a human either fixes the code
or writes a reasoned ``# repro: allow(CODE) why`` waiver.  A linter
that tries to prove data flow ends up trusted nowhere; one that flags
a short list of known-fatal constructs, with an escape hatch that
forces a written justification, stays enforceable in CI.

Scope lives in :mod:`repro.devtools.project`: deterministic modules
(``rib/``, ``simulator/``, ``analysis/``, ``scenarios/``), hot-path
modules (``mrt/``, ``bgp/wire.py``, ``simulator/``) and the CLI.
"""

from __future__ import annotations

import ast
import hashlib
import re
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.devtools.findings import Finding
from repro.devtools.project import Project, SourceModule

#: The gated, byte-neutral instrumentation surface hot paths may use:
#: module-level helpers that check one boolean and allocate nothing
#: while disabled (see ``repro/obs/metrics.py``), plus the flag probe.
GATED_OBS_HELPERS = frozenset(
    {"phase", "count", "gauge", "record_timing", "timed",
     "metrics_enabled"}
)

#: ``cli.py`` functions that own stdout.  Everything else prints with
#: an explicit ``file=`` (almost always stderr) or routes through one
#: of these, so "what can possibly write to stdout" stays grep-able.
CLI_STDOUT_EMITTERS = frozenset({"_emit", "_emit_json"})

#: Module-level names that look like a memo/cache (MEMO001).
_CACHE_NAME_RE = re.compile(r"(^|_)(MEMO|MEMOS|CACHE|CACHES)$")

#: Where the cache layer lives (CACHE001 inputs).
_SERIALIZE_REL = "scenarios/serialize.py"
_RUNNER_REL = "scenarios/runner.py"
_ENGINE_REL = "scenarios/engine.py"

#: How many hex digits of the schema digest are recorded.
_FINGERPRINT_LENGTH = 12


class Checker:
    """Base checker: a code, an explanation, and two hook points."""

    code: str = ""
    title: str = ""
    #: Rationale + the historical bug this code encodes (``--explain``).
    explain: str = ""

    def check(self, module: SourceModule) -> "Iterator[Finding]":
        """Per-module findings (most checkers live here)."""
        return iter(())

    def finalize(self, project: Project) -> "Iterator[Finding]":
        """Whole-project findings, after every module was parsed."""
        return iter(())


# ----------------------------------------------------------------------
# DET001 — salted hash()/id() in deterministic modules
# ----------------------------------------------------------------------
class Det001SaltedHash(Checker):
    code = "DET001"
    title = "bare hash()/id() in a deterministic module"
    explain = """\
Deterministic modules (rib/, simulator/, analysis/, scenarios/) feed
persisted results and collector metrics, which must be bit-identical
across processes and runs.  Python salts str/bytes hash() per process
(PYTHONHASHSEED) and id() is an address — both differ run to run, so
any value derived from them that reaches output breaks reproducibility
silently.

History: PR 1's sweep engine keyed a decision-process tie breaker on
hash(); identical specs produced different winners across processes
until it was replaced with zlib.crc32 over a canonical encoding.

Fix: crc32/sha256 over repr()/canonical bytes for stable digests;
explicit integer ids or registries for identity keys.  hash() inside a
__hash__ method is fine (it never leaves the process by contract) and
is not flagged.  In-process-only uses take a reasoned
'# repro: allow(DET001) ...' waiver."""

    def check(self, module: SourceModule) -> "Iterator[Finding]":
        if module.tree is None or not module.is_deterministic:
            return
        for node, in_hash in _walk_with_hash_scope(module.tree):
            if in_hash or not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id in ("hash", "id"):
                yield module.finding(
                    self.code,
                    node,
                    f"bare {func.id}() is process-salted; derive"
                    " stable values (crc32/sha256 over canonical"
                    " bytes) or waive with a reason",
                )


def _walk_with_hash_scope(tree) -> "Iterator[Tuple[ast.AST, bool]]":
    """Yield (node, inside___hash__) over the whole tree."""
    stack: "List[Tuple[ast.AST, bool]]" = [(tree, False)]
    while stack:
        node, in_hash = stack.pop()
        yield node, in_hash
        child_scope = in_hash or (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == "__hash__"
        )
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_scope))


# ----------------------------------------------------------------------
# DET002 — ambient nondeterminism in deterministic modules
# ----------------------------------------------------------------------
class Det002AmbientEntropy(Checker):
    code = "DET002"
    title = "ambient entropy source in a deterministic module"
    explain = """\
Deterministic modules must draw every random bit from the spec's seed
and every timestamp from simulated time.  The ambient sources — the
module-level random.* functions (and unseeded random.Random()),
time.time(), os.urandom, uuid.*, datetime.now() — differ per run, and
iterating a set (or set()/frozenset() call) without sorted() leaks the
salted hash order into whatever consumes the loop.

History: the seed refactor in PR 1 exists because early drivers mixed
global random.* calls with per-run RNGs; two "identical" runs agreed
only when PYTHONHASHSEED happened to match.

Fix: thread a seeded random.Random(seed) through; use the event
queue's clock for time; wrap unordered iteration in sorted(...).
Wall-clock metadata that never reaches result bytes (manifest
timestamps) takes a reasoned waiver."""

    _TIME_FUNCS = frozenset({"time", "time_ns"})
    _DATETIME_FUNCS = frozenset({"now", "utcnow", "today"})

    def check(self, module: SourceModule) -> "Iterator[Finding]":
        if module.tree is None or not module.is_deterministic:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                message = self._call_violation(node)
                if message is not None:
                    yield module.finding(self.code, node, message)
            iter_node = self._unordered_iteration(node)
            if iter_node is not None:
                yield module.finding(
                    self.code,
                    iter_node,
                    "iteration over a set is salted-hash ordered;"
                    " wrap in sorted(...) before it feeds output",
                )

    def _call_violation(self, node: ast.Call) -> "Optional[str]":
        func = node.func
        if not isinstance(func, ast.Attribute):
            return None
        owner = func.value
        if isinstance(owner, ast.Name):
            if owner.id == "random":
                if func.attr != "Random":
                    return (
                        f"module-level random.{func.attr}() draws from"
                        " the shared unseeded RNG; thread a seeded"
                        " random.Random(seed) instead"
                    )
                if not node.args and not node.keywords:
                    return (
                        "random.Random() without a seed is entropy-"
                        "seeded; pass the spec seed"
                    )
                return None
            if owner.id == "time" and func.attr in self._TIME_FUNCS:
                return (
                    f"time.{func.attr}() is wall clock; deterministic"
                    " code uses simulated/event time (durations may"
                    " use time.perf_counter/monotonic)"
                )
            if owner.id == "os" and func.attr == "urandom":
                return "os.urandom() is pure entropy; derive from the seed"
            if owner.id == "uuid" and func.attr.startswith("uuid"):
                return (
                    f"uuid.{func.attr}() is host/entropy derived; use"
                    " deterministic identifiers"
                )
            if owner.id == "secrets":
                return "secrets.* is pure entropy; derive from the seed"
        if func.attr in self._DATETIME_FUNCS and _mentions_datetime(owner):
            return (
                f"datetime {func.attr}() reads the wall clock; pass"
                " timestamps in explicitly"
            )
        return None

    @staticmethod
    def _unordered_iteration(node) -> "Optional[ast.AST]":
        """The unordered iterable of a for/comprehension, if any."""
        sources = []
        if isinstance(node, ast.For):
            sources.append(node.iter)
        elif isinstance(node, ast.comprehension):
            sources.append(node.iter)
        for source in sources:
            if isinstance(source, (ast.Set, ast.SetComp)):
                return source
            if (
                isinstance(source, ast.Call)
                and isinstance(source.func, ast.Name)
                and source.func.id in ("set", "frozenset")
            ):
                return source
        return None


def _mentions_datetime(node) -> bool:
    if isinstance(node, ast.Name):
        return node.id in ("datetime", "date")
    if isinstance(node, ast.Attribute):
        return node.attr in ("datetime", "date")
    return False


# ----------------------------------------------------------------------
# OBS001 — ungated instrumentation on the hot path
# ----------------------------------------------------------------------
class Obs001UngatedInstrumentation(Checker):
    code = "OBS001"
    title = "ungated repro.obs use in a hot-path module"
    explain = """\
Hot-path modules (mrt/, bgp/wire.py, simulator/) decode or process
millions of records; PR 6's instrumentation is admissible there only
through the gated module-level helpers (phase/count/gauge/
record_timing/timed and the metrics_enabled probe), which cost one
boolean branch while disabled and are proven byte-neutral.  Anything
else from repro.obs — journals, the registry object, profiling,
set_metrics_enabled — allocates, does I/O, or mutates global state on
a path that must stay flat and deterministic.

History: bench_obs.py pins a <=5% enabled / ~0% disabled overhead
budget; an early draft held a registry reference in the decode loop
and wrote timings unconditionally, blowing the disabled budget and
making worker payloads differ byte-for-byte.

Fix: import the gated helpers ('from repro.obs import metrics as
obs_metrics' and call only the gated names, or import the helpers
directly) and keep everything heavier in the engine/CLI layer."""

    _ALLOWED_FROM_OBS = GATED_OBS_HELPERS | {"metrics"}

    def check(self, module: SourceModule) -> "Iterator[Finding]":
        if module.tree is None or not module.is_hot_path:
            return
        #: Names bound to the metrics module / the obs package.
        metrics_aliases: "Set[str]" = set()
        package_aliases: "Set[str]" = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom):
                for finding in self._check_import_from(
                    module, node, metrics_aliases, package_aliases
                ):
                    yield finding
            elif isinstance(node, ast.Import):
                for finding in self._check_import(module, node):
                    yield finding
        if not metrics_aliases and not package_aliases:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Attribute):
                continue
            owner = node.value
            if not isinstance(owner, ast.Name):
                continue
            if owner.id in metrics_aliases:
                allowed = GATED_OBS_HELPERS
            elif owner.id in package_aliases:
                allowed = self._ALLOWED_FROM_OBS
            else:
                continue
            if node.attr not in allowed:
                yield module.finding(
                    self.code,
                    node,
                    f"{owner.id}.{node.attr} is not part of the gated"
                    " no-op instrumentation surface"
                    f" ({', '.join(sorted(GATED_OBS_HELPERS))})",
                )

    def _check_import_from(
        self, module, node, metrics_aliases, package_aliases
    ) -> "Iterator[Finding]":
        target = node.module or ""
        if node.level or not (
            target == "repro" or target.startswith("repro.")
        ):
            return
        if target == "repro":
            for alias in node.names:
                if alias.name == "obs":
                    package_aliases.add(alias.asname or alias.name)
            return
        if not target.startswith("repro.obs"):
            return
        if target == "repro.obs":
            for alias in node.names:
                if alias.name == "metrics":
                    metrics_aliases.add(alias.asname or alias.name)
                elif alias.name not in self._ALLOWED_FROM_OBS:
                    yield module.finding(
                        self.code,
                        node,
                        f"hot-path import of repro.obs.{alias.name};"
                        " only the gated helpers"
                        f" ({', '.join(sorted(GATED_OBS_HELPERS))})"
                        " belong here",
                    )
            return
        if target == "repro.obs.metrics":
            for alias in node.names:
                if alias.name not in GATED_OBS_HELPERS:
                    yield module.finding(
                        self.code,
                        node,
                        f"hot-path import of"
                        f" repro.obs.metrics.{alias.name} bypasses the"
                        " gated helper surface",
                    )
            return
        yield module.finding(
            self.code,
            node,
            f"hot-path import from {target}; only"
            " repro.obs.metrics' gated helpers belong here",
        )

    def _check_import(self, module, node) -> "Iterator[Finding]":
        for alias in node.names:
            if alias.name == "repro.obs" or alias.name.startswith(
                "repro.obs."
            ):
                yield module.finding(
                    self.code,
                    node,
                    f"hot-path 'import {alias.name}'; import the gated"
                    " helpers explicitly (from repro.obs import"
                    " metrics as obs_metrics)",
                )


# ----------------------------------------------------------------------
# IO001 — stdout discipline in the CLI
# ----------------------------------------------------------------------
class Io001StdoutDiscipline(Checker):
    code = "IO001"
    title = "undesignated stdout write in cli.py"
    explain = """\
The CLI's stdout contract is machine-JSON-owns-stdout: a --json run's
stdout must stay one parseable document, human tables go to stdout
only through the designated emitters (_emit/_emit_json), and
everything diagnostic — progress, status views, errors — says
file=sys.stderr explicitly.  A bare print() anywhere else in cli.py
is a latent pipe-breaker: it works until someone calls it on the
--json path and a downstream json.load dies.

History: the PR 6 status view originally printed its human table to
stdout; piping 'sweep --status --json' worked while plain
'sweep --status' contaminated captures, which is why the table moved
to stderr and why this contract is now lintable.

Fix: route stdout output through _emit()/_emit_json(), or add
file=sys.stderr (any explicit file= passes)."""

    def check(self, module: SourceModule) -> "Iterator[Finding]":
        if module.tree is None or not module.is_cli:
            return
        for node, function_name in _walk_with_function_scope(module.tree):
            if function_name in CLI_STDOUT_EMITTERS:
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "print":
                if not any(
                    keyword.arg == "file" for keyword in node.keywords
                ):
                    yield module.finding(
                        self.code,
                        node,
                        "bare print() outside the designated emitters;"
                        " use _emit()/_emit_json() for stdout or pass"
                        " file=sys.stderr",
                    )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "write"
                and isinstance(func.value, ast.Attribute)
                and func.value.attr == "stdout"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id == "sys"
            ):
                yield module.finding(
                    self.code,
                    node,
                    "direct sys.stdout.write outside the designated"
                    " emitters; route through _emit()/_emit_json()",
                )


def _walk_with_function_scope(
    tree,
) -> "Iterator[Tuple[ast.AST, Optional[str]]]":
    """Yield (node, innermost enclosing function name) pairs."""
    stack: "List[Tuple[ast.AST, Optional[str]]]" = [(tree, None)]
    while stack:
        node, scope = stack.pop()
        yield node, scope
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            child_scope = node.name
        else:
            child_scope = scope
        for child in ast.iter_child_nodes(node):
            stack.append((child, child_scope))


# ----------------------------------------------------------------------
# CACHE001 — result schema drift without a CACHE_VERSION bump
# ----------------------------------------------------------------------
class Cache001SchemaFingerprint(Checker):
    code = "CACHE001"
    title = "result schema changed without a CACHE_VERSION bump"
    explain = """\
Cache entries under --cache-dir outlive the code that wrote them; the
only thing standing between an old entry and a silent wrong answer is
CACHE_VERSION.  This checker fingerprints the serialized result
schema — the payload keys emitted by result_to_dict/failure_to_dict
plus the ScenarioResult and SweepReport field sets — and compares it
to CACHE_SCHEMA_FINGERPRINT, recorded next to CACHE_VERSION in
scenarios/runner.py.  Growing the schema therefore forces an edit on
the exact lines where the version decision lives.

History: PR 5 added reader_stats to mrt-replay results; v1 cache
entries replayed byte-different from fresh computations until the
v1 -> v2 bump.  The bug class is 'schema grew, version did not'.

Fix: when this fires, decide whether the change alters replayed
bytes; bump CACHE_VERSION if so (document why if not), then set
CACHE_SCHEMA_FINGERPRINT to the computed value in the message."""

    def finalize(self, project: Project) -> "Iterator[Finding]":
        runner = project.module(_RUNNER_REL)
        serialize = project.module(_SERIALIZE_REL)
        engine = project.module(_ENGINE_REL)
        if runner is None or serialize is None or engine is None:
            # Partial scan (single files, fixtures): the cache layer
            # is not in view, so there is nothing to compare.
            return
        if None in (runner.tree, serialize.tree, engine.tree):
            return
        computed = schema_fingerprint(project)
        if computed is None:
            yield runner.finding(
                self.code,
                (1, 0),
                "could not derive the result schema (result_to_dict /"
                " ScenarioResult / SweepReport not found); the cache"
                " contract is unverifiable",
            )
            return
        recorded, node = _module_constant(
            runner.tree, "CACHE_SCHEMA_FINGERPRINT"
        )
        version_node = _module_constant(runner.tree, "CACHE_VERSION")[1]
        if recorded is None:
            anchor = version_node if version_node is not None else (1, 0)
            yield runner.finding(
                self.code,
                anchor,
                "no CACHE_SCHEMA_FINGERPRINT recorded next to"
                f" CACHE_VERSION; add CACHE_SCHEMA_FINGERPRINT ="
                f" \"{computed}\"",
            )
            return
        if recorded != computed:
            yield runner.finding(
                self.code,
                node,
                f"serialized result schema changed (computed {computed},"
                f" recorded {recorded}); bump CACHE_VERSION if replayed"
                " bytes change, then set CACHE_SCHEMA_FINGERPRINT ="
                f" \"{computed}\"",
            )


def schema_fingerprint(project: Project) -> "Optional[str]":
    """The current serialized-result schema digest, or None.

    Tagged by origin so a key moving between the payload and a
    dataclass still changes the digest.
    """
    serialize = project.module(_SERIALIZE_REL)
    runner = project.module(_RUNNER_REL)
    engine = project.module(_ENGINE_REL)
    if serialize is None or runner is None or engine is None:
        return None
    if None in (serialize.tree, runner.tree, engine.tree):
        return None
    tagged: "List[str]" = []
    found_any = {"functions": False, "result": False, "sweep": False}
    for name in ("result_to_dict", "failure_to_dict"):
        function = _module_function(serialize.tree, name)
        if function is None:
            continue
        found_any["functions"] = True
        for key in _serialized_keys(function):
            tagged.append(f"{name}:{key}")
    result_fields = _dataclass_fields(engine.tree, "ScenarioResult")
    if result_fields is not None:
        found_any["result"] = True
        tagged.extend(f"ScenarioResult:{name}" for name in result_fields)
    sweep_fields = _dataclass_fields(runner.tree, "SweepReport")
    if sweep_fields is not None:
        found_any["sweep"] = True
        tagged.extend(f"SweepReport:{name}" for name in sweep_fields)
    if not all(found_any.values()):
        return None
    canonical = "\n".join(sorted(tagged)).encode("utf-8")
    return hashlib.sha256(canonical).hexdigest()[:_FINGERPRINT_LENGTH]


def _serialized_keys(function: ast.AST) -> "Set[str]":
    """String keys a serializer emits: dict literals + payload stores."""
    keys: "Set[str]" = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if isinstance(key, ast.Constant) and isinstance(
                    key.value, str
                ):
                    keys.add(key.value)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                key = _subscript_str_key(target)
                if key is not None:
                    keys.add(key)
    return keys


def _subscript_str_key(node) -> "Optional[str]":
    if not isinstance(node, ast.Subscript):
        return None
    index = node.slice
    # Python 3.8 wraps constant subscripts in ast.Index.
    if index.__class__.__name__ == "Index":
        index = index.value  # pragma: no cover (3.8 only)
    if isinstance(index, ast.Constant) and isinstance(index.value, str):
        return index.value
    return None


def _module_function(tree, name: str) -> "Optional[ast.AST]":
    for node in tree.body:
        if (
            isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
            and node.name == name
        ):
            return node
    return None


def _dataclass_fields(tree, class_name: str) -> "Optional[List[str]]":
    for node in tree.body:
        if not isinstance(node, ast.ClassDef) or node.name != class_name:
            continue
        names: "List[str]" = []
        for statement in node.body:
            if isinstance(statement, ast.AnnAssign) and isinstance(
                statement.target, ast.Name
            ):
                names.append(statement.target.id)
        return names
    return None


def _module_constant(
    tree, name: str
) -> "Tuple[Optional[str], Optional[ast.AST]]":
    for node in tree.body:
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            if isinstance(target, ast.Name) and target.id == name:
                value = node.value
                if isinstance(value, ast.Constant) and isinstance(
                    value.value, str
                ):
                    return value.value, node
                return None, node
    return None, None


# ----------------------------------------------------------------------
# MEMO001 — unbounded module-level caches
# ----------------------------------------------------------------------
class Memo001UnboundedCache(Checker):
    code = "MEMO001"
    title = "module-level dict cache not built on bounded_store"
    explain = """\
Module-level dict caches outlive any one run; one that grows without
bound is a slow memory leak that surfaces as an OOM in hour-long
sweeps, and an ad-hoc eviction policy silently diverges from the
shared one.  Every memo in src/repro/ therefore stores through
netbase/memo.py's bounded_store (wholesale clear at a limit, named
hit/miss/evict counters), which keeps the policy and the accounting
in one audited place.

History: PR 5's decode memos standardized on bounded_store precisely
because per-cache hand-rolled bounds had already drifted (different
limits, no counters, one cache with no bound at all).

The heuristic: a module-level dict whose name ends in _MEMO/_CACHE
(or MEMOS/CACHES) must appear as bounded_store's first argument, and
must not also be stored into directly (d[k] = v / .setdefault /
.update bypass the bound and the miss counter).  A deliberately
unbounded mapping takes a reasoned waiver or a non-cache name."""

    _STORE_METHODS = frozenset({"setdefault", "update"})

    def check(self, module: SourceModule) -> "Iterator[Finding]":
        if (
            module.tree is None
            or not module.in_repro_package
            or module.rel == "netbase/memo.py"
        ):
            return
        caches: "Dict[str, ast.AST]" = {}
        for node in module.tree.body:
            name = _module_dict_name(node)
            if name is not None and _CACHE_NAME_RE.search(name.upper()):
                caches[name] = node
        if not caches:
            return
        bounded: "Set[str]" = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_bounded_store = (
                isinstance(func, ast.Name) and func.id == "bounded_store"
            ) or (
                isinstance(func, ast.Attribute)
                and func.attr == "bounded_store"
            )
            if is_bounded_store and node.args:
                first = node.args[0]
                if isinstance(first, ast.Name):
                    bounded.add(first.id)
        for name, definition in sorted(caches.items()):
            if name not in bounded:
                yield module.finding(
                    self.code,
                    definition,
                    f"module-level dict cache {name} never stores"
                    " through netbase/memo.py's bounded_store; it is"
                    " unbounded and uncounted",
                )
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in caches
                        and target.value.id in bounded
                    ):
                        yield module.finding(
                            self.code,
                            node,
                            f"direct store into {target.value.id}"
                            " bypasses bounded_store's limit and miss"
                            " accounting",
                        )
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in self._STORE_METHODS
                    and isinstance(func.value, ast.Name)
                    and func.value.id in caches
                ):
                    yield module.finding(
                        self.code,
                        node,
                        f"{func.value.id}.{func.attr}(...) bypasses"
                        " bounded_store's limit and miss accounting",
                    )


def _module_dict_name(node) -> "Optional[str]":
    """The name of a module-level ``NAME = {}``/``dict()`` binding."""
    if isinstance(node, ast.Assign):
        if len(node.targets) != 1 or not isinstance(
            node.targets[0], ast.Name
        ):
            return None
        target, value = node.targets[0], node.value
    elif isinstance(node, ast.AnnAssign):
        if not isinstance(node.target, ast.Name) or node.value is None:
            return None
        target, value = node.target, node.value
    else:
        return None
    if isinstance(value, ast.Dict):
        return target.id
    if (
        isinstance(value, ast.Call)
        and isinstance(value.func, ast.Name)
        and value.func.id == "dict"
        and not value.args
    ):
        return target.id
    return None


# ----------------------------------------------------------------------
# DUR001 — durable state written around atomic_write()
# ----------------------------------------------------------------------
class Dur001DurableWrite(Checker):
    code = "DUR001"
    title = "ad-hoc durable write in a durable-state module"
    explain = """\
Durable-state modules (scenarios/runner.py, scenarios/backends.py,
faults/doctor.py) persist caches, manifests and queue records that
other invocations — possibly on other machines — read back and trust.
Every such write must go through repro.durable.atomic_write: it
checksum-frames the payload, fsyncs before os.replace, and names its
temporaries so orphan sweeps and `repro doctor` can reason about them.
An ad-hoc open(..., 'w') or os.replace reimplements the tmp-rename
dance without the fsync, the framing or the recognizable tmp name.

History: before PR 10, runner.py and backends.py carried three
separate unfsynced tmp-rename copies; killed writers left .tmp.<pid>
orphans forever and torn writes were half-parsed as cache entries.

Fix: route the write through durable.atomic_write (or read side
through durable.read_durable).  os.rename is deliberately not flagged
— queue claim/requeue transitions of already-durable files are its
legitimate use.  A genuinely non-durable write (a scratch file, a
probe) takes a '# repro: allow(DUR001) ...' waiver."""

    #: open() modes that create or mutate: any of w/x/a/+.
    _WRITE_MODE_RE = re.compile(r"[wxa+]")

    def check(self, module: SourceModule) -> "Iterator[Finding]":
        if module.tree is None or not module.is_durable_state:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name) and func.id == "open":
                mode = self._open_mode(node)
                if mode is not None and self._WRITE_MODE_RE.search(
                    mode
                ):
                    yield module.finding(
                        self.code,
                        node,
                        f"open(..., {mode!r}) writes durable state"
                        " directly; route it through"
                        " durable.atomic_write",
                    )
            elif (
                isinstance(func, ast.Attribute)
                and func.attr == "replace"
                and isinstance(func.value, ast.Name)
                and func.value.id == "os"
            ):
                yield module.finding(
                    self.code,
                    node,
                    "os.replace(...) is atomic_write's job here;"
                    " ad-hoc tmp-rename skips the fsync and the"
                    " checksum frame",
                )

    @staticmethod
    def _open_mode(call: ast.Call) -> "Optional[str]":
        """The constant mode string of an open() call, if present."""
        mode_node = None
        if len(call.args) >= 2:
            mode_node = call.args[1]
        else:
            for keyword in call.keywords:
                if keyword.arg == "mode":
                    mode_node = keyword.value
                    break
        if mode_node is None:
            return None  # default "r": a read
        if isinstance(mode_node, ast.Constant) and isinstance(
            mode_node.value, str
        ):
            return mode_node.value
        # A computed mode cannot be judged syntactically; stay quiet
        # rather than false-positive (the reviewed-waiver philosophy).
        return None


# ----------------------------------------------------------------------
# SYN001 / SUP001 — infrastructure codes
# ----------------------------------------------------------------------
class Syn001SyntaxError(Checker):
    code = "SYN001"
    title = "file does not parse"
    explain = """\
A file that does not parse cannot be checked, imported or tested; in
a lint pass it must be a loud finding, not a silent skip — a skip
reads as 'clean' in CI.  Fix the syntax error; there is no waiver
(the comment scanner still runs, but the contract checkers cannot)."""

    def check(self, module: SourceModule) -> "Iterator[Finding]":
        if module.syntax_error is not None:
            yield module.finding(
                self.code,
                (1, 0),
                f"syntax error: {module.syntax_error}",
            )


class Sup001MalformedSuppression(Checker):
    code = "SUP001"
    title = "malformed or unreasoned suppression comment"
    explain = """\
'# repro: allow(CODE) reason' is a reviewed waiver: the reason is the
review record.  A suppression with no reason, an unknown code, or a
typo'd form would otherwise fail open (no waiver, surprise CI red) or
masquerade as a waiver in review while doing nothing.  Findings for
this code come from the comment scanner itself and cannot be
suppressed — fix the comment."""

    # Findings are produced by the comment scanner in
    # repro.devtools.suppress; the class exists for the catalog,
    # --select and --explain.


#: Registration order is report order for equal locations.
ALL_CHECKERS: "Tuple[Checker, ...]" = (
    Det001SaltedHash(),
    Det002AmbientEntropy(),
    Obs001UngatedInstrumentation(),
    Io001StdoutDiscipline(),
    Cache001SchemaFingerprint(),
    Memo001UnboundedCache(),
    Dur001DurableWrite(),
    Syn001SyntaxError(),
    Sup001MalformedSuppression(),
)

#: code -> checker instance.
CHECKERS_BY_CODE: "Dict[str, Checker]" = {
    checker.code: checker for checker in ALL_CHECKERS
}

#: Every valid code, sorted (the suppression parser's vocabulary).
KNOWN_CODES: "Tuple[str, ...]" = tuple(sorted(CHECKERS_BY_CODE))
