"""Suppression comments and the grandfathering baseline.

Two escape hatches keep the linter adoptable without weakening it:

* ``# repro: allow(CODE) reason`` — a *reasoned*, per-line waiver.
  The reason is mandatory: a suppression is a reviewed decision, and
  the decision's justification belongs next to the code it waives.
  A suppression on its own comment line covers the next source line;
  a trailing comment covers its own line.  Multiple codes separate
  with commas: ``# repro: allow(DET001,DET002) <reason>``.
* the **baseline file** (``.repro-check-baseline.json``) — bulk
  grandfathering for adopting the linter on a tree with pre-existing
  findings.  Entries match on (code, path, stripped line text), not
  line numbers, so unrelated edits never resurrect a grandfathered
  finding.  The shipped tree keeps this file empty — CI asserts it —
  so the baseline is a migration tool, not a loophole.

Malformed suppressions (missing reason, unknown code, bad syntax) are
themselves findings (``SUP001``): a waiver that silently fails open
or silently fails closed is worse than no waiver at all.
"""

from __future__ import annotations

import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Set, Tuple

from repro.devtools.findings import Finding

#: The suppression marker, anchored to the start of the comment so a
#: prose mention of the syntax deeper in a comment is not a directive.
_DIRECTIVE_RE = re.compile(r"^#+\s*repro:")
_ALLOW_RE = re.compile(
    r"^#+\s*repro:\s*allow\(\s*(?P<codes>[^)]*)\)\s*(?P<reason>.*)$"
)

#: A valid checker code: letters then digits (DET001, MEMO001, ...).
_CODE_RE = re.compile(r"^[A-Z]{2,8}[0-9]{3}$")

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = ".repro-check-baseline.json"


@dataclass
class Suppression:
    """One parsed ``# repro: allow(...)`` comment."""

    #: Line the comment sits on (1-based).
    comment_line: int
    #: Line the waiver applies to (the same line for trailing
    #: comments, the next source line for standalone comment lines).
    target_line: int
    codes: "Tuple[str, ...]"
    reason: str
    #: Set when a finding actually used this waiver (unused
    #: suppressions are reported so stale waivers get cleaned up).
    used: bool = field(default=False, compare=False)


def _iter_comments(source: str) -> "Iterable[Tuple[int, int, str]]":
    """Yield ``(line, col, text)`` for every comment in *source*.

    Tokenizing (rather than regexing raw lines) is what keeps a
    ``# repro:`` mention inside a docstring or string literal — this
    module's own documentation, say — from reading as a directive.
    Tokenization runs on a best-effort basis: when it dies partway
    (the SYN001 case), whatever comments it produced before the error
    still count, so waivers keep working in a broken file.
    """
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type == tokenize.COMMENT:
                yield token.start[0], token.start[1], token.string
    except (tokenize.TokenError, IndentationError, SyntaxError):
        return


def parse_suppressions(
    source: str, known_codes: "Set[str]", path: str
) -> "Tuple[List[Suppression], List[Finding]]":
    """Extract suppressions (and SUP001 findings) from *source*."""
    suppressions: "List[Suppression]" = []
    problems: "List[Finding]" = []
    lines = source.splitlines()
    for index, col, raw in _iter_comments(source):
        if _DIRECTIVE_RE.match(raw) is None:
            continue
        match = _ALLOW_RE.match(raw)
        if match is None:
            # Any other "# repro:" comment is a typo'd directive — e.g.
            # ``# repro: allow DET001`` — which would otherwise fail
            # open (no waiver) while looking like one in review.
            problems.append(
                Finding(
                    code="SUP001",
                    path=path,
                    line=index,
                    col=col,
                    message=(
                        "unrecognized '# repro:' directive; the"
                        " only form is"
                        " '# repro: allow(CODE[,CODE]) reason'"
                    ),
                    line_text=_line_text(lines, index),
                )
            )
            continue
        codes = tuple(
            part.strip() for part in match.group("codes").split(",")
            if part.strip()
        )
        reason = match.group("reason").strip()
        bad = [code for code in codes if not _CODE_RE.match(code)]
        if not codes or bad:
            problems.append(
                Finding(
                    code="SUP001",
                    path=path,
                    line=index,
                    col=col,
                    message=(
                        f"malformed suppression codes {bad or '()'};"
                        " expected e.g. allow(DET001) or"
                        " allow(DET001,MEMO001)"
                    ),
                    line_text=_line_text(lines, index),
                )
            )
            continue
        unknown = [code for code in codes if code not in known_codes]
        if unknown:
            problems.append(
                Finding(
                    code="SUP001",
                    path=path,
                    line=index,
                    col=col,
                    message=(
                        f"suppression names unknown code(s)"
                        f" {', '.join(unknown)}; run 'repro check"
                        " --explain CODE' for the catalog"
                    ),
                    line_text=_line_text(lines, index),
                )
            )
            continue
        if not reason:
            problems.append(
                Finding(
                    code="SUP001",
                    path=path,
                    line=index,
                    col=col,
                    message=(
                        f"suppression of {','.join(codes)} has no"
                        " reason; a waiver must say why the contract"
                        " does not apply here"
                    ),
                    line_text=_line_text(lines, index),
                )
            )
            continue
        # A comment with only whitespace before it is a standalone
        # waiver line covering the next source line; a trailing
        # comment covers its own.
        before = lines[index - 1][:col] if index <= len(lines) else ""
        if before.strip():
            target = index
        else:
            target = _next_source_line(lines, index)
        suppressions.append(
            Suppression(
                comment_line=index,
                target_line=target,
                codes=codes,
                reason=reason,
            )
        )
    return suppressions, problems


def _line_text(lines: "List[str]", index: int) -> str:
    if 1 <= index <= len(lines):
        return lines[index - 1].strip()
    return ""


def _next_source_line(lines: "List[str]", comment_index: int) -> int:
    """First non-blank, non-comment line after a standalone waiver."""
    for index in range(comment_index + 1, len(lines) + 1):
        text = lines[index - 1].strip()
        if text and not text.startswith("#"):
            return index
    return comment_index


def apply_suppressions(
    findings: "Iterable[Finding]",
    suppressions: "Sequence[Suppression]",
) -> "Tuple[List[Finding], int]":
    """Drop findings waived by *suppressions*; returns (kept, dropped).

    SUP001 never suppresses itself: a malformed waiver cannot be
    waved away by the comment that is malformed.
    """
    by_line: "Dict[int, List[Suppression]]" = {}
    for suppression in suppressions:
        by_line.setdefault(suppression.target_line, []).append(suppression)
    kept: "List[Finding]" = []
    dropped = 0
    for finding in findings:
        waiver = None
        if finding.code != "SUP001":
            for candidate in by_line.get(finding.line, ()):
                if finding.code in candidate.codes:
                    waiver = candidate
                    break
        if waiver is None:
            kept.append(finding)
        else:
            waiver.used = True
            dropped += 1
    return kept, dropped


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
class BaselineError(ValueError):
    """The baseline file exists but is not a valid baseline."""


@dataclass
class Baseline:
    """Grandfathered findings, keyed line-number-free."""

    #: (code, path, stripped line text) -> allowed occurrence count.
    entries: "Dict[Tuple[str, str, str], int]" = field(
        default_factory=dict
    )

    @property
    def total(self) -> int:
        return sum(self.entries.values())

    def is_empty(self) -> bool:
        return not self.entries

    def as_dict(self) -> dict:
        return {
            "version": BASELINE_VERSION,
            "findings": [
                {
                    "code": code,
                    "path": path,
                    "line_text": line_text,
                    "count": count,
                }
                for (code, path, line_text), count in sorted(
                    self.entries.items()
                )
            ],
        }


def empty_baseline() -> Baseline:
    return Baseline()


def baseline_from_findings(findings: "Iterable[Finding]") -> Baseline:
    entries: "Dict[Tuple[str, str, str], int]" = {}
    for finding in findings:
        key = finding.anchor()
        entries[key] = entries.get(key, 0) + 1
    return Baseline(entries)


def load_baseline(path: str) -> Baseline:
    """Read a baseline file; raises :class:`BaselineError` on damage."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            data = json.load(handle)
    except OSError as exc:
        raise BaselineError(f"cannot open baseline {path}: {exc}")
    except ValueError as exc:
        raise BaselineError(f"baseline {path} is not JSON: {exc}")
    if not isinstance(data, dict) or "findings" not in data:
        raise BaselineError(
            f"baseline {path} must be an object with a 'findings' list"
        )
    version = data.get("version", BASELINE_VERSION)
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path} has version {version!r};"
            f" this tool reads version {BASELINE_VERSION}"
        )
    entries: "Dict[Tuple[str, str, str], int]" = {}
    for item in data["findings"]:
        if not isinstance(item, dict):
            raise BaselineError(
                f"baseline {path}: entries must be objects, got {item!r}"
            )
        try:
            key = (
                str(item["code"]),
                str(item["path"]),
                str(item["line_text"]),
            )
        except KeyError as exc:
            raise BaselineError(
                f"baseline {path}: entry missing key {exc}"
            )
        entries[key] = entries.get(key, 0) + int(item.get("count", 1))
    return Baseline(entries)


def save_baseline(baseline: Baseline, path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(baseline.as_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")


def apply_baseline(
    findings: "Iterable[Finding]", baseline: Baseline
) -> "Tuple[List[Finding], int]":
    """Drop up to ``count`` occurrences of each grandfathered anchor."""
    budget = dict(baseline.entries)
    kept: "List[Finding]" = []
    dropped = 0
    for finding in findings:
        key = finding.anchor()
        remaining = budget.get(key, 0)
        if remaining > 0:
            budget[key] = remaining - 1
            dropped += 1
        else:
            kept.append(finding)
    return kept, dropped
