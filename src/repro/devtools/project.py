"""Parsed-source model shared by every checker.

A :class:`SourceModule` is one Python file parsed once — AST, raw
source, line list and package-relative path — handed to every
selected checker, so a full-tree run costs one ``ast.parse`` per file
no matter how many checkers are on.  A :class:`Project` is the whole
scanned set, for the checkers (CACHE001) whose contract spans files.

Checkers scope themselves by *package-relative* path — the path below
the ``repro`` package directory (``simulator/session.py``,
``bgp/wire.py``, ``cli.py``) — so the same rules apply whether the
tree is scanned as ``src/``, ``src/repro/`` or one file at a time,
and so fixture tests can claim any scope by naming their snippet.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.devtools.findings import Finding

#: Modules whose outputs must be bit-reproducible (DET001/DET002):
#: everything feeding persisted results or collector metrics.
DETERMINISTIC_PREFIXES = ("rib/", "simulator/", "analysis/", "scenarios/")

#: Hot-path modules (OBS001): instrumentation here must be the gated
#: no-op-span/counter pattern and nothing else.
HOT_PATH_PREFIXES = ("mrt/", "simulator/")
HOT_PATH_FILES = ("bgp/wire.py",)

#: The CLI module (IO001): stdout belongs to the designated emitters.
CLI_FILES = ("cli.py",)

#: Modules that persist durable on-disk state (DUR001): every cache,
#: manifest or queue record write must go through
#: ``repro.durable.atomic_write`` — no ad-hoc ``open(..., "w")`` /
#: ``os.replace`` tmp-rename reimplementations.
DURABLE_STATE_FILES = (
    "scenarios/runner.py",
    "scenarios/backends.py",
    "faults/doctor.py",
)


@dataclass
class SourceModule:
    """One parsed Python source file."""

    #: Path as given to the scanner (what findings report).
    path: str
    #: Package-relative path below ``repro/`` ("" when outside it).
    rel: str
    source: str
    tree: "Optional[ast.AST]"
    #: Raised text when the file does not parse (SYN001).
    syntax_error: "Optional[str]" = None
    lines: "List[str]" = field(default_factory=list)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, code: str, node, message: str
    ) -> Finding:
        """Build a finding anchored on an AST node (or (line, col))."""
        if isinstance(node, tuple):
            line, col = node
        else:
            line = getattr(node, "lineno", 0)
            col = getattr(node, "col_offset", 0)
        return Finding(
            code=code,
            path=self.path,
            line=line,
            col=col,
            message=message,
            line_text=self.line_text(line),
        )

    # ------------------------------------------------------------------
    # scope predicates
    # ------------------------------------------------------------------
    @property
    def in_repro_package(self) -> bool:
        return bool(self.rel)

    @property
    def is_deterministic(self) -> bool:
        return self.rel.startswith(DETERMINISTIC_PREFIXES)

    @property
    def is_hot_path(self) -> bool:
        return (
            self.rel.startswith(HOT_PATH_PREFIXES)
            or self.rel in HOT_PATH_FILES
        )

    @property
    def is_cli(self) -> bool:
        return self.rel in CLI_FILES

    @property
    def is_durable_state(self) -> bool:
        return self.rel in DURABLE_STATE_FILES


@dataclass
class Project:
    """Every module scanned by one ``repro check`` invocation."""

    modules: "List[SourceModule]" = field(default_factory=list)

    def module(self, rel: str) -> "Optional[SourceModule]":
        for candidate in self.modules:
            if candidate.rel == rel:
                return candidate
        return None


def package_relative(path: str) -> str:
    """The path below the ``repro`` package dir, '' when outside it.

    ``src/repro/simulator/session.py`` -> ``simulator/session.py``;
    a path with no ``repro`` component (say a fixture file) is not
    part of the package and gets no package-scoped checks.
    """
    parts = os.path.normpath(path).replace(os.sep, "/").split("/")
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1:])
    return ""


def parse_module(
    path: str, source: str, rel: "Optional[str]" = None
) -> SourceModule:
    """Parse one file's *source* into a :class:`SourceModule`.

    *rel* overrides the package-relative path — fixture tests use it
    to place an in-memory snippet inside any scope.
    """
    if rel is None:
        rel = package_relative(path)
    try:
        tree = ast.parse(source)
        error = None
    except SyntaxError as exc:
        tree = None
        error = f"{exc.msg} (line {exc.lineno})"
    return SourceModule(
        path=path,
        rel=rel,
        source=source,
        tree=tree,
        syntax_error=error,
        lines=source.splitlines(),
    )


def load_module(path: str) -> SourceModule:
    with open(path, "r", encoding="utf-8") as handle:
        return parse_module(path, handle.read())


def iter_python_files(paths: "Tuple[str, ...]") -> "Iterator[str]":
    """Expand files/directories into a sorted, de-duplicated file list.

    Raises :class:`FileNotFoundError` for a path that does not exist —
    the CLI turns that into a usage error (exit 2) instead of a clean
    run over nothing.
    """
    seen = set()
    ordered: "List[str]" = []
    for path in paths:
        if os.path.isfile(path):
            candidates = [path]
        elif os.path.isdir(path):
            candidates = []
            for root, dirs, files in os.walk(path):
                dirs.sort()
                dirs[:] = [
                    name for name in dirs
                    if name != "__pycache__" and not name.startswith(".")
                ]
                for name in sorted(files):
                    if name.endswith(".py"):
                        candidates.append(os.path.join(root, name))
        else:
            raise FileNotFoundError(path)
        for candidate in candidates:
            marker = os.path.normpath(candidate)
            if marker not in seen:
                seen.add(marker)
                ordered.append(candidate)
    return iter(ordered)
