"""``repro check`` — the CLI face of the contract linter.

Exit-code contract (CI and editors key off it):

* ``0`` — clean: no findings after suppressions and the baseline;
* ``1`` — findings: at least one contract violation to show;
* ``2`` — usage error: unknown code, missing path, damaged baseline.

Output discipline (the linter eats its own cooking): findings — the
machine-consumable product, human or JSON — go to stdout; diagnostics
and usage errors go to stderr.
"""

from __future__ import annotations

import json
import os
import sys

from repro.devtools.api import (
    UsageError,
    catalog,
    explain,
    run_check,
)
from repro.devtools.suppress import (
    DEFAULT_BASELINE_NAME,
    BaselineError,
    baseline_from_findings,
    empty_baseline,
    load_baseline,
    save_baseline,
)

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_USAGE = 2


def add_check_parser(subparsers) -> None:
    """Attach the ``check`` subcommand to the main ``repro`` parser."""
    check = subparsers.add_parser(
        "check",
        help="static analysis: enforce the repo's contract invariants",
        description=(
            "AST-based contract linter: determinism (DET001/DET002),"
            " hot-path instrumentation gating (OBS001), CLI stdout"
            " discipline (IO001), cache schema versioning (CACHE001),"
            " bounded memos (MEMO001) and atomic durable writes"
            " (DUR001).  Exit 0 clean, 1 findings, 2 usage error."
        ),
    )
    check.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files/directories to lint (default: src, else .)",
    )
    check.add_argument(
        "--format",
        choices=("human", "json"),
        default="human",
        help="findings as lines for humans or one JSON document",
    )
    check.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated checker codes to run (default: all)",
    )
    check.add_argument(
        "--explain",
        default=None,
        metavar="CODE",
        help=(
            "print the rationale and historical bug behind CODE"
            " (or 'all') and exit"
        ),
    )
    check.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "grandfathered-findings file (default:"
            f" ./{DEFAULT_BASELINE_NAME} when present)"
        ),
    )
    check.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (strict mode)",
    )
    check.add_argument(
        "--write-baseline",
        action="store_true",
        help=(
            "write the current findings to the baseline file and exit"
            " 0 (adoption helper; the shipped baseline stays empty)"
        ),
    )


def run_check_command(arguments) -> int:
    """Execute ``repro check``; returns the process exit code."""
    if arguments.explain is not None:
        return _run_explain(arguments.explain)
    paths = list(arguments.paths)
    if not paths:
        paths = ["src"] if os.path.isdir("src") else ["."]
    select = (
        arguments.select.split(",") if arguments.select is not None
        else None
    )
    baseline_path = arguments.baseline
    if baseline_path is None and not arguments.no_baseline:
        if os.path.exists(DEFAULT_BASELINE_NAME):
            baseline_path = DEFAULT_BASELINE_NAME
    try:
        if arguments.no_baseline or baseline_path is None:
            baseline = empty_baseline()
        else:
            baseline = load_baseline(baseline_path)
        if arguments.write_baseline:
            return _run_write_baseline(
                paths, select, baseline_path or DEFAULT_BASELINE_NAME
            )
        report = run_check(paths, select=select, baseline=baseline)
    except (UsageError, BaselineError) as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return EXIT_USAGE
    if arguments.format == "json":
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.render_human())
    return EXIT_CLEAN if report.clean else EXIT_FINDINGS


def _run_explain(code: str) -> int:
    try:
        if code.strip().lower() == "all":
            blocks = [explain(entry) for entry, _ in catalog()]
            print("\n\n".join(blocks))
        else:
            print(explain(code))
    except UsageError as exc:
        print(f"repro check: {exc}", file=sys.stderr)
        return EXIT_USAGE
    return EXIT_CLEAN


def _run_write_baseline(paths, select, baseline_path) -> int:
    report = run_check(paths, select=select, baseline=empty_baseline())
    save_baseline(baseline_from_findings(report.findings), baseline_path)
    print(
        f"repro check: wrote {len(report.findings)} finding(s) to"
        f" {baseline_path}",
        file=sys.stderr,
    )
    return EXIT_CLEAN
