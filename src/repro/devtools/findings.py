"""Finding records and report shaping for the contract linter.

A :class:`Finding` is one contract violation at one source location.
Findings are plain data — the whole devtools subsystem keeps the
pipeline ``parse -> check -> filter -> report`` free of hidden state
so the pytest-importable API and the CLI see exactly the same objects.

Two identity notions matter:

* the *location* (``path:line:col``) orders human output; and
* the *anchor* (code + path + stripped source-line text) keys baseline
  matching, because line numbers drift on every unrelated edit while
  the offending line itself rarely changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Sequence

#: Schema version of the ``--format json`` document.  Bump (and update
#: the schema test) whenever the emitted shape changes — the linter
#: holds itself to the same output-discipline contract it enforces.
REPORT_VERSION = 1


@dataclass(frozen=True)
class Finding:
    """One contract violation at one source location."""

    #: Checker code, e.g. ``"DET001"``.
    code: str
    #: Path as scanned (repo-relative when the CLI is run from the
    #: repository root, absolute when given absolute paths).
    path: str
    #: 1-based line of the violating node; 0 for whole-file findings.
    line: int
    #: 0-based column of the violating node.
    col: int
    #: One-sentence description of this specific violation.
    message: str
    #: Stripped text of the violating source line (baseline anchor).
    line_text: str = ""

    def sort_key(self):
        return (self.path, self.line, self.col, self.code, self.message)

    def anchor(self) -> "tuple":
        """Line-number-free identity used by baseline matching."""
        return (self.code, self.path, self.line_text)

    def as_dict(self) -> "Dict[str, Any]":
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "line_text": self.line_text,
        }

    def render(self) -> str:
        """The one-line human form: ``path:line:col CODE message``."""
        return f"{self.path}:{self.line}:{self.col} {self.code} {self.message}"


@dataclass
class CheckReport:
    """Everything one ``repro check`` invocation produced."""

    #: Findings that survived suppressions and the baseline, sorted.
    findings: "List[Finding]" = field(default_factory=list)
    #: Findings silenced by ``# repro: allow(...)`` comments.
    suppressed: int = 0
    #: Findings silenced by baseline entries.
    baselined: int = 0
    #: How many files were parsed and checked.
    files_scanned: int = 0
    #: Which checker codes ran (sorted).
    codes: "List[str]" = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.findings

    def counts_by_code(self) -> "Dict[str, int]":
        counts: "Dict[str, int]" = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def as_dict(self) -> "Dict[str, Any]":
        """The stable ``--format json`` document."""
        return {
            "version": REPORT_VERSION,
            "clean": self.clean,
            "files_scanned": self.files_scanned,
            "codes": list(self.codes),
            "counts": self.counts_by_code(),
            "suppressed": self.suppressed,
            "baselined": self.baselined,
            "findings": [finding.as_dict() for finding in self.findings],
        }

    def render_human(self) -> str:
        """Multi-line human report (one line per finding + summary)."""
        lines = [finding.render() for finding in self.findings]
        silenced = ""
        if self.suppressed or self.baselined:
            silenced = (
                f" ({self.suppressed} suppressed,"
                f" {self.baselined} baselined)"
            )
        if self.findings:
            touched = len({finding.path for finding in self.findings})
            lines.append("")
            lines.append(
                f"repro check: {len(self.findings)} finding(s) in"
                f" {touched} file(s), {self.files_scanned} file(s)"
                f" scanned{silenced}"
            )
        else:
            lines.append(
                f"repro check: clean — {self.files_scanned} file(s)"
                f" scanned{silenced}"
            )
        return "\n".join(lines)


def sort_findings(findings: "Sequence[Finding]") -> "List[Finding]":
    return sorted(findings, key=Finding.sort_key)
