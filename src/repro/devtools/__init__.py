"""Static-analysis devtools: the repo's contract linter.

Six PRs of hard-won invariants — bit-reproducible results, byte-
neutral instrumentation, machine-JSON-owns-stdout, bounded memos,
cache versions that move with the schema — were enforced only by
runtime tests that catch a violation *after* it ships a wrong byte.
This package rejects the bug classes at lint time instead:

======== ==========================================================
code     contract
======== ==========================================================
DET001   no bare ``hash()``/``id()`` in deterministic modules
DET002   no ambient entropy (unseeded ``random.*``, ``time.time()``,
         ``os.urandom``, unsorted set iteration) in those modules
OBS001   hot paths use only the gated no-op instrumentation helpers
IO001    ``cli.py`` stdout flows through the designated emitters
CACHE001 serialized result schema moves only with ``CACHE_VERSION``
MEMO001  module-level dict caches build on ``bounded_store``
SYN001   every scanned file parses
SUP001   every suppression is well-formed and gives a reason
======== ==========================================================

Use it three ways, all the same pipeline:

* CLI: ``repro check [--format json] [--select CODES] [PATHS]``,
  ``repro check --explain CODE``; exit 0 clean / 1 findings / 2 usage;
* pytest: ``from repro.devtools import run_check, check_source``;
* CI: ``scripts/ci.sh`` runs the tree check before the test tiers.

Waivers: ``# repro: allow(CODE) reason`` on (or directly above) the
line, reason mandatory; bulk grandfathering via the checked-in —
and deliberately empty — ``.repro-check-baseline.json``.

The package depends on nothing outside the stdlib (``ast`` does the
work) and nothing in it is imported by the runtime modules it checks.
"""

from repro.devtools.api import (
    UsageError,
    catalog,
    check_modules,
    check_source,
    explain,
    run_check,
)
from repro.devtools.checkers import (
    ALL_CHECKERS,
    CHECKERS_BY_CODE,
    KNOWN_CODES,
    schema_fingerprint,
)
from repro.devtools.findings import REPORT_VERSION, CheckReport, Finding
from repro.devtools.project import (
    Project,
    SourceModule,
    load_module,
    parse_module,
)
from repro.devtools.suppress import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineError,
    apply_baseline,
    baseline_from_findings,
    empty_baseline,
    load_baseline,
    parse_suppressions,
    save_baseline,
)

__all__ = [
    "ALL_CHECKERS",
    "Baseline",
    "BaselineError",
    "CHECKERS_BY_CODE",
    "CheckReport",
    "DEFAULT_BASELINE_NAME",
    "Finding",
    "KNOWN_CODES",
    "Project",
    "REPORT_VERSION",
    "SourceModule",
    "UsageError",
    "apply_baseline",
    "baseline_from_findings",
    "catalog",
    "check_modules",
    "check_source",
    "empty_baseline",
    "explain",
    "load_baseline",
    "load_module",
    "parse_module",
    "parse_suppressions",
    "run_check",
    "save_baseline",
    "schema_fingerprint",
]
