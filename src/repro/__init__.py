"""repro — reproduction of "Keep your Communities Clean" (CoNEXT 2020).

The library has three layers:

* **substrates** — :mod:`repro.netbase` (prefixes, ASNs, time),
  :mod:`repro.bgp` (messages, attributes, communities, wire codec),
  :mod:`repro.mrt` (RFC 6396 archives), :mod:`repro.rib` (RIBs and the
  decision process), :mod:`repro.policy` (import/export policy,
  geo-tagging, filters), :mod:`repro.vendors` (implementation behavior
  profiles);
* **simulation** — :mod:`repro.simulator` (event-driven BGP networks,
  route collectors, the paper's lab experiments),
  :mod:`repro.beacons` (RIPE-style routing beacons),
  :mod:`repro.workloads` (synthetic internet + 10-year growth model);
* **analysis** — :mod:`repro.analysis` (the paper's §4 cleaning
  pipeline, §5 announcement-type taxonomy, §6 community-exploration
  and revealed-information analyses), :mod:`repro.reports` (rendering).

Quick taste::

    from repro.workloads import InternetConfig, InternetModel
    from repro.analysis import observations_from_collector, build_table2

    day = InternetModel(InternetConfig.small()).run()
    obs = list(observations_from_collector(day.collector("rrc00")))
    print(build_table2(obs).as_rows())
"""

from repro.netbase import ASN, Prefix
from repro.bgp import (
    ASPath,
    Community,
    CommunitySet,
    LargeCommunity,
    PathAttributes,
    UpdateMessage,
)
from repro.analysis import (
    AnnouncementType,
    CleaningPipeline,
    UpdateClassifier,
    build_table1,
    build_table2,
    observations_from_collector,
    observations_from_mrt,
)
from repro.simulator import Network, RouteCollector, Router
from repro.vendors import BIRD, CISCO_IOS, JUNOS, VendorProfile

__version__ = "1.0.0"

__all__ = [
    "ASN",
    "Prefix",
    "ASPath",
    "Community",
    "CommunitySet",
    "LargeCommunity",
    "PathAttributes",
    "UpdateMessage",
    "AnnouncementType",
    "CleaningPipeline",
    "UpdateClassifier",
    "build_table1",
    "build_table2",
    "observations_from_collector",
    "observations_from_mrt",
    "Network",
    "RouteCollector",
    "Router",
    "BIRD",
    "CISCO_IOS",
    "JUNOS",
    "VendorProfile",
    "__version__",
]
