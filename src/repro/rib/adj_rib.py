"""Adjacency RIBs: per-peer inbound and outbound route stores.

:class:`AdjRIBIn` stores what a peer advertised (post import policy, as
RFC 4271 permits either; storing post-policy matches the paper's Exp4
observation that ingress filtering removes communities "from the
router's RIB").

:class:`AdjRIBOut` stores what we last advertised to a peer.  Whether a
router *compares* a pending advertisement against this store before
sending is exactly the vendor difference the paper's lab experiments
expose (§3): Junos suppresses duplicates, Cisco IOS/IOS-XR and BIRD do
not.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.bgp.attributes import PathAttributes
from repro.netbase.prefix import Prefix
from repro.rib.route import Route


class AdjacencyIndex:
    """Cross-session candidate index: prefix -> {rib key -> route}.

    A router holds one Adj-RIB-In per session; re-running the decision
    process for a prefix needs the candidate routes from *every*
    session.  Scanning each RIB per reconsideration is O(sessions);
    this index, maintained by the :class:`AdjRIBIn` instances that
    share it, hands back exactly the affected prefix's candidates.

    Candidates are returned sorted by rib key (the session id), which
    reproduces session attach order — the order the decision process
    historically saw, so tie-breaking is unchanged.
    """

    __slots__ = ("_by_prefix",)

    def __init__(self):
        self._by_prefix: "Dict[Prefix, Dict[int, Route]]" = {}

    def note_install(self, key: int, route: Route) -> None:
        """Record that RIB *key* now holds *route*."""
        bucket = self._by_prefix.get(route.prefix)
        if bucket is None:
            bucket = self._by_prefix[route.prefix] = {}
        bucket[key] = route

    def note_withdraw(self, key: int, prefix: Prefix) -> None:
        """Record that RIB *key* no longer holds *prefix*."""
        bucket = self._by_prefix.get(prefix)
        if bucket is not None:
            bucket.pop(key, None)
            if not bucket:
                del self._by_prefix[prefix]

    def candidates(self, prefix: Prefix) -> "List[Tuple[int, Route]]":
        """(rib key, route) pairs for *prefix*, in session order."""
        bucket = self._by_prefix.get(prefix)
        if not bucket:
            return []
        return sorted(bucket.items())

    def prefixes(self) -> "List[Prefix]":
        """All prefixes with at least one candidate (snapshot list)."""
        return list(self._by_prefix)

    def __len__(self) -> int:
        return len(self._by_prefix)


class AdjRIBIn:
    """Routes received from one peer, keyed by prefix.

    When constructed with a *key* and a shared :class:`AdjacencyIndex`,
    every mutation is mirrored into the index so the owning router can
    recompute best paths without scanning its other RIBs.
    """

    __slots__ = ("_routes", "_key", "_index")

    def __init__(
        self,
        key: int = 0,
        index: "AdjacencyIndex | None" = None,
    ):
        self._routes: Dict[Prefix, Route] = {}
        self._key = key
        self._index = index

    def install(self, route: Route) -> "Route | None":
        """Store *route*, returning the entry it replaced (or None)."""
        previous = self._routes.get(route.prefix)
        self._routes[route.prefix] = route
        if self._index is not None:
            self._index.note_install(self._key, route)
        return previous

    def withdraw(self, prefix: Prefix) -> "Route | None":
        """Remove the entry for *prefix*, returning it (or None)."""
        route = self._routes.pop(prefix, None)
        if route is not None and self._index is not None:
            self._index.note_withdraw(self._key, prefix)
        return route

    def get(self, prefix: Prefix) -> Optional[Route]:
        """The stored route for *prefix*, or None."""
        return self._routes.get(prefix)

    def prefixes(self) -> "list[Prefix]":
        """All prefixes currently present (snapshot list)."""
        return list(self._routes)

    def clear(self) -> "list[Prefix]":
        """Drop everything (session reset); return affected prefixes."""
        prefixes = list(self._routes)
        self._routes.clear()
        if self._index is not None:
            for prefix in prefixes:
                self._index.note_withdraw(self._key, prefix)
        return prefixes

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes.values())


class AdjRIBOut:
    """Attributes last advertised to one peer, keyed by prefix.

    The store distinguishes three states per prefix:

    * absent — never advertised (or withdrawn);
    * present — advertised with the stored attributes.
    """

    __slots__ = ("_advertised",)

    def __init__(self):
        self._advertised: Dict[Prefix, PathAttributes] = {}

    def record_advertisement(
        self, prefix: Prefix, attributes: PathAttributes
    ) -> None:
        """Remember that *prefix* was advertised with *attributes*."""
        self._advertised[prefix] = attributes

    def record_withdrawal(self, prefix: Prefix) -> bool:
        """Forget *prefix*; True when it had been advertised."""
        return self._advertised.pop(prefix, None) is not None

    def last_advertised(self, prefix: Prefix) -> Optional[PathAttributes]:
        """Attributes most recently sent for *prefix*, or None."""
        return self._advertised.get(prefix)

    def is_advertised(self, prefix: Prefix) -> bool:
        """True when *prefix* is currently advertised to the peer."""
        return prefix in self._advertised

    def prefixes(self) -> "list[Prefix]":
        """All advertised prefixes (snapshot list)."""
        return list(self._advertised)

    def clear(self) -> "list[Prefix]":
        """Drop everything (session reset); return affected prefixes."""
        prefixes = list(self._advertised)
        self._advertised.clear()
        return prefixes

    def __len__(self) -> int:
        return len(self._advertised)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._advertised
