"""Adjacency RIBs: per-peer inbound and outbound route stores.

:class:`AdjRIBIn` stores what a peer advertised (post import policy, as
RFC 4271 permits either; storing post-policy matches the paper's Exp4
observation that ingress filtering removes communities "from the
router's RIB").

:class:`AdjRIBOut` stores what we last advertised to a peer.  Whether a
router *compares* a pending advertisement against this store before
sending is exactly the vendor difference the paper's lab experiments
expose (§3): Junos suppresses duplicates, Cisco IOS/IOS-XR and BIRD do
not.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.bgp.attributes import PathAttributes
from repro.netbase.prefix import Prefix
from repro.rib.route import Route


class AdjRIBIn:
    """Routes received from one peer, keyed by prefix."""

    __slots__ = ("_routes",)

    def __init__(self):
        self._routes: Dict[Prefix, Route] = {}

    def install(self, route: Route) -> "Route | None":
        """Store *route*, returning the entry it replaced (or None)."""
        previous = self._routes.get(route.prefix)
        self._routes[route.prefix] = route
        return previous

    def withdraw(self, prefix: Prefix) -> "Route | None":
        """Remove the entry for *prefix*, returning it (or None)."""
        return self._routes.pop(prefix, None)

    def get(self, prefix: Prefix) -> Optional[Route]:
        """The stored route for *prefix*, or None."""
        return self._routes.get(prefix)

    def prefixes(self) -> "list[Prefix]":
        """All prefixes currently present (snapshot list)."""
        return list(self._routes)

    def clear(self) -> "list[Prefix]":
        """Drop everything (session reset); return affected prefixes."""
        prefixes = list(self._routes)
        self._routes.clear()
        return prefixes

    def __len__(self) -> int:
        return len(self._routes)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._routes

    def __iter__(self) -> Iterator[Route]:
        return iter(self._routes.values())


class AdjRIBOut:
    """Attributes last advertised to one peer, keyed by prefix.

    The store distinguishes three states per prefix:

    * absent — never advertised (or withdrawn);
    * present — advertised with the stored attributes.
    """

    __slots__ = ("_advertised",)

    def __init__(self):
        self._advertised: Dict[Prefix, PathAttributes] = {}

    def record_advertisement(
        self, prefix: Prefix, attributes: PathAttributes
    ) -> None:
        """Remember that *prefix* was advertised with *attributes*."""
        self._advertised[prefix] = attributes

    def record_withdrawal(self, prefix: Prefix) -> bool:
        """Forget *prefix*; True when it had been advertised."""
        return self._advertised.pop(prefix, None) is not None

    def last_advertised(self, prefix: Prefix) -> Optional[PathAttributes]:
        """Attributes most recently sent for *prefix*, or None."""
        return self._advertised.get(prefix)

    def is_advertised(self, prefix: Prefix) -> bool:
        """True when *prefix* is currently advertised to the peer."""
        return prefix in self._advertised

    def prefixes(self) -> "list[Prefix]":
        """All advertised prefixes (snapshot list)."""
        return list(self._advertised)

    def clear(self) -> "list[Prefix]":
        """Drop everything (session reset); return affected prefixes."""
        prefixes = list(self._advertised)
        self._advertised.clear()
        return prefixes

    def __len__(self) -> int:
        return len(self._advertised)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._advertised
