"""Routing information bases and the BGP decision process.

A router (in :mod:`repro.simulator`) owns one :class:`AdjRIBIn` per
peer, one :class:`LocRIB`, and one :class:`AdjRIBOut` per peer.  The
duplicate-update phenomenon the paper studies lives precisely in the
seam between Loc-RIB changes and Adj-RIB-Out comparison — see
:mod:`repro.vendors` for how implementations differ.
"""

from repro.rib.route import Route, RouteSource
from repro.rib.adj_rib import AdjRIBIn, AdjRIBOut
from repro.rib.loc_rib import LocRIB
from repro.rib.decision import DecisionProcess, DecisionConfig
from repro.rib.trie import PrefixTrie

__all__ = [
    "Route",
    "RouteSource",
    "AdjRIBIn",
    "AdjRIBOut",
    "LocRIB",
    "DecisionProcess",
    "DecisionConfig",
    "PrefixTrie",
]
