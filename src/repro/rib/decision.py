"""The BGP decision process (RFC 4271 §9.1.2.2 + universal tie breakers).

Step order, matching what Cisco IOS, Junos and BIRD all implement in
practice:

1.  Highest LOCAL_PREF (default 100 when absent).
2.  Shortest AS path (AS_SET counts as one hop).
3.  Lowest ORIGIN (IGP < EGP < INCOMPLETE).
4.  Lowest MED, compared only between routes from the same neighbor AS
    (``always_compare_med`` widens this to all routes, as the Cisco
    knob of the same name does).
5.  Prefer eBGP-learned over iBGP-learned.
6.  Lowest IGP cost to the BGP next hop (hot-potato routing — this is
    the step that flips Y1's choice from Y2 to Y3 in the paper's Exp1
    when the Y1–Y2 link dies).
7.  Lowest BGP router ID of the advertising router.
8.  Lowest peer address.

The process is deterministic: given the same candidate set it always
returns the same winner, which the property-based tests exploit.
"""

from __future__ import annotations

import ipaddress
import zlib
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.rib.route import Route, RouteSource


@dataclass(frozen=True)
class DecisionConfig:
    """Knobs altering the decision process."""

    #: Compare MED across neighbor ASes (Cisco ``always-compare-med``).
    always_compare_med: bool = False
    #: Ignore the router-id step and prefer the oldest route instead
    #: (Cisco's default eBGP behavior; disabled here by default to keep
    #: runs deterministic under replay).
    prefer_oldest: bool = False


class DecisionProcess:
    """Select the best route among candidates for one prefix."""

    def __init__(self, config: "DecisionConfig | None" = None):
        self._config = config or DecisionConfig()

    @property
    def config(self) -> DecisionConfig:
        """The active configuration."""
        return self._config

    def select(self, candidates: Iterable[Route]) -> Optional[Route]:
        """Return the best route, or None when no candidate exists.

        Candidates must all be for the same prefix; this is asserted
        because mixing prefixes is always a caller bug.
        """
        pool = [route for route in candidates if route is not None]
        if not pool:
            return None
        if len(pool) == 1:
            # The overwhelmingly common case on real topologies: one
            # candidate needs no elimination rounds (and cannot mix
            # prefixes).
            return pool[0]
        prefixes = {route.prefix for route in pool}
        if len(prefixes) > 1:
            raise ValueError(
                f"decision over mixed prefixes: {sorted(map(str, prefixes))}"
            )
        # Steps 1-3 are one lexicographic minimum: highest LOCAL_PREF,
        # then shortest path, then lowest origin — a single pass over
        # precomputed keys instead of three filter rounds.
        keyed = [
            (
                (
                    -route.effective_local_pref,
                    route.attributes.as_path.length(),
                    route.attributes.origin,
                ),
                route,
            )
            for route in pool
        ]
        best_key = min(key for key, _route in keyed)
        pool = [route for key, route in keyed if key == best_key]
        if len(pool) == 1:
            return pool[0]
        for step in (
            self._filter_med,
            self._filter_ebgp,
            self._filter_igp_cost,
        ):
            pool = step(pool)
            if len(pool) == 1:
                return pool[0]
        if self._config.prefer_oldest:
            oldest = min(route.learned_at for route in pool)
            pool = [r for r in pool if r.learned_at == oldest]
            if len(pool) == 1:
                return pool[0]
        pool = self._filter_router_id(pool)
        if len(pool) == 1:
            return pool[0]
        pool = self._filter_peer_address(pool)
        return pool[0]

    def ranking(self, candidates: Iterable[Route]) -> "list[Route]":
        """Return candidates ordered best-first (for path exploration).

        Produced by repeatedly removing the winner; quadratic, but the
        candidate sets are per-prefix and tiny.
        """
        remaining = [route for route in candidates if route is not None]
        ordered: list = []
        while remaining:
            best = self.select(remaining)
            ordered.append(best)
            remaining = [r for r in remaining if r is not best]
        return ordered

    # ------------------------------------------------------------------
    # individual steps — each keeps only the surviving candidates
    # (steps 1-3 are fused into one lexicographic pass in select())
    # ------------------------------------------------------------------
    def _filter_med(self, pool: Sequence[Route]) -> "list[Route]":
        if len(pool) < 2:
            return list(pool)
        if self._config.always_compare_med:
            best = min(route.effective_med for route in pool)
            return [r for r in pool if r.effective_med == best]
        # Standard semantics: eliminate a route only when a same-
        # neighbor-AS rival has strictly lower MED.  One pass computes
        # the lowest MED per neighbor AS; a route is beaten exactly
        # when its neighbor's minimum is strictly below its own MED.
        lowest_med: dict = {}
        meds = []
        for route in pool:
            neighbor = route.neighbor_asn
            med = route.effective_med
            meds.append((neighbor, med))
            if neighbor is not None:
                known = lowest_med.get(neighbor)
                if known is None or med < known:
                    lowest_med[neighbor] = med
        return [
            route
            for route, (neighbor, med) in zip(pool, meds)
            if neighbor is None or lowest_med[neighbor] >= med
        ]

    @staticmethod
    def _filter_ebgp(pool: Sequence[Route]) -> "list[Route]":
        if any(route.source == RouteSource.EBGP for route in pool):
            kept = [r for r in pool if r.source == RouteSource.EBGP]
            # LOCAL routes rank above eBGP in real tables, but local
            # routes only meet learned routes at the originating router
            # where they always win on weight; model that here.
            local = [r for r in pool if r.source == RouteSource.LOCAL]
            return local or kept
        local = [r for r in pool if r.source == RouteSource.LOCAL]
        return local or list(pool)

    @staticmethod
    def _filter_igp_cost(pool: Sequence[Route]) -> "list[Route]":
        best = min(route.igp_cost for route in pool)
        return [r for r in pool if r.igp_cost == best]

    @staticmethod
    def _filter_router_id(pool: Sequence[Route]) -> "list[Route]":
        keys = [_router_id_key(route.peer_id) for route in pool]
        best = min(keys)
        return [r for r, k in zip(pool, keys) if k == best]

    @staticmethod
    def _filter_peer_address(pool: Sequence[Route]) -> "list[Route]":
        return [
            min(
                pool,
                key=lambda route: _peer_address_key(route.peer_address),
            )
        ]


# ----------------------------------------------------------------------
# memoized tie-breaker keys: the same few router ids and session
# addresses are parsed millions of times on a big run, so the parsed
# keys are cached process-wide (both caches are pure string -> tuple).
# ----------------------------------------------------------------------
_ROUTER_ID_KEYS: "dict[Optional[str], tuple]" = {None: (0, 0)}
_PEER_ADDRESS_KEYS: "dict[Optional[str], tuple]" = {None: (0, 0)}


def _router_id_key(peer_id: "Optional[str]") -> tuple:
    try:
        return _ROUTER_ID_KEYS[peer_id]
    except KeyError:
        pass
    try:
        key = (1, int(ipaddress.IPv4Address(peer_id)))
    except ipaddress.AddressValueError:
        # crc32, not hash(): a salted hash would make this tie breaker
        # — and thus route selection — vary between interpreter runs.
        key = (2, zlib.crc32(str(peer_id).encode("utf-8")))
    _ROUTER_ID_KEYS[peer_id] = key
    return key


def _peer_address_key(peer_address: "Optional[str]") -> tuple:
    try:
        return _PEER_ADDRESS_KEYS[peer_address]
    except KeyError:
        pass
    parsed = ipaddress.ip_address(peer_address)
    key = (parsed.version, int(parsed))
    _PEER_ADDRESS_KEYS[peer_address] = key
    return key
