"""The BGP decision process (RFC 4271 §9.1.2.2 + universal tie breakers).

Step order, matching what Cisco IOS, Junos and BIRD all implement in
practice:

1.  Highest LOCAL_PREF (default 100 when absent).
2.  Shortest AS path (AS_SET counts as one hop).
3.  Lowest ORIGIN (IGP < EGP < INCOMPLETE).
4.  Lowest MED, compared only between routes from the same neighbor AS
    (``always_compare_med`` widens this to all routes, as the Cisco
    knob of the same name does).
5.  Prefer eBGP-learned over iBGP-learned.
6.  Lowest IGP cost to the BGP next hop (hot-potato routing — this is
    the step that flips Y1's choice from Y2 to Y3 in the paper's Exp1
    when the Y1–Y2 link dies).
7.  Lowest BGP router ID of the advertising router.
8.  Lowest peer address.

The process is deterministic: given the same candidate set it always
returns the same winner, which the property-based tests exploit.
"""

from __future__ import annotations

import ipaddress
import zlib
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from repro.rib.route import Route, RouteSource


@dataclass(frozen=True)
class DecisionConfig:
    """Knobs altering the decision process."""

    #: Compare MED across neighbor ASes (Cisco ``always-compare-med``).
    always_compare_med: bool = False
    #: Ignore the router-id step and prefer the oldest route instead
    #: (Cisco's default eBGP behavior; disabled here by default to keep
    #: runs deterministic under replay).
    prefer_oldest: bool = False


class DecisionProcess:
    """Select the best route among candidates for one prefix."""

    def __init__(self, config: "DecisionConfig | None" = None):
        self._config = config or DecisionConfig()

    @property
    def config(self) -> DecisionConfig:
        """The active configuration."""
        return self._config

    def select(self, candidates: Iterable[Route]) -> Optional[Route]:
        """Return the best route, or None when no candidate exists.

        Candidates must all be for the same prefix; this is asserted
        because mixing prefixes is always a caller bug.
        """
        pool = [route for route in candidates if route is not None]
        if not pool:
            return None
        prefixes = {route.prefix for route in pool}
        if len(prefixes) > 1:
            raise ValueError(
                f"decision over mixed prefixes: {sorted(map(str, prefixes))}"
            )
        pool = self._filter_local_pref(pool)
        pool = self._filter_path_length(pool)
        pool = self._filter_origin(pool)
        pool = self._filter_med(pool)
        pool = self._filter_ebgp(pool)
        pool = self._filter_igp_cost(pool)
        if len(pool) > 1 and self._config.prefer_oldest:
            oldest = min(route.learned_at for route in pool)
            pool = [r for r in pool if r.learned_at == oldest]
        pool = self._filter_router_id(pool)
        pool = self._filter_peer_address(pool)
        return pool[0]

    def ranking(self, candidates: Iterable[Route]) -> "list[Route]":
        """Return candidates ordered best-first (for path exploration).

        Produced by repeatedly removing the winner; quadratic, but the
        candidate sets are per-prefix and tiny.
        """
        remaining = [route for route in candidates if route is not None]
        ordered: list = []
        while remaining:
            best = self.select(remaining)
            ordered.append(best)
            remaining = [r for r in remaining if r is not best]
        return ordered

    # ------------------------------------------------------------------
    # individual steps — each keeps only the surviving candidates
    # ------------------------------------------------------------------
    @staticmethod
    def _filter_local_pref(pool: Sequence[Route]) -> "list[Route]":
        best = max(route.effective_local_pref for route in pool)
        return [r for r in pool if r.effective_local_pref == best]

    @staticmethod
    def _filter_path_length(pool: Sequence[Route]) -> "list[Route]":
        best = min(route.attributes.as_path.length() for route in pool)
        return [r for r in pool if r.attributes.as_path.length() == best]

    @staticmethod
    def _filter_origin(pool: Sequence[Route]) -> "list[Route]":
        best = min(route.attributes.origin for route in pool)
        return [r for r in pool if r.attributes.origin == best]

    def _filter_med(self, pool: Sequence[Route]) -> "list[Route]":
        if len(pool) < 2:
            return list(pool)
        if self._config.always_compare_med:
            best = min(route.effective_med for route in pool)
            return [r for r in pool if r.effective_med == best]
        # Standard semantics: eliminate a route only when a same-
        # neighbor-AS rival has strictly lower MED.
        survivors = []
        for route in pool:
            beaten = any(
                other.neighbor_asn == route.neighbor_asn
                and other.effective_med < route.effective_med
                for other in pool
                if other is not route and other.neighbor_asn is not None
            )
            if not beaten:
                survivors.append(route)
        return survivors

    @staticmethod
    def _filter_ebgp(pool: Sequence[Route]) -> "list[Route]":
        if any(route.source == RouteSource.EBGP for route in pool):
            kept = [r for r in pool if r.source == RouteSource.EBGP]
            # LOCAL routes rank above eBGP in real tables, but local
            # routes only meet learned routes at the originating router
            # where they always win on weight; model that here.
            local = [r for r in pool if r.source == RouteSource.LOCAL]
            return local or kept
        local = [r for r in pool if r.source == RouteSource.LOCAL]
        return local or list(pool)

    @staticmethod
    def _filter_igp_cost(pool: Sequence[Route]) -> "list[Route]":
        best = min(route.igp_cost for route in pool)
        return [r for r in pool if r.igp_cost == best]

    @staticmethod
    def _filter_router_id(pool: Sequence[Route]) -> "list[Route]":
        def router_id_key(route: Route):
            if route.peer_id is None:
                return (0, 0)  # local routes sort first
            try:
                return (1, int(ipaddress.IPv4Address(route.peer_id)))
            except ipaddress.AddressValueError:
                # crc32, not hash(): a salted hash would make this tie
                # breaker — and thus route selection — vary between
                # interpreter runs.
                return (2, zlib.crc32(str(route.peer_id).encode("utf-8")))

        best = min(router_id_key(route) for route in pool)
        return [r for r in pool if router_id_key(r) == best]

    @staticmethod
    def _filter_peer_address(pool: Sequence[Route]) -> "list[Route]":
        def address_key(route: Route):
            if route.peer_address is None:
                return (0, 0)
            parsed = ipaddress.ip_address(route.peer_address)
            return (parsed.version, int(parsed))

        pool = sorted(pool, key=address_key)
        return [pool[0]]
