"""A binary prefix trie for longest-prefix match and overlap queries.

The paper's cleaning step notes "we did not aggregate overlapping
prefixes" — implying the tooling must *know* which prefixes overlap in
order to decide not to.  This trie provides that, plus the
longest-prefix-match lookup a forwarding-plane check needs, and
covering/covered queries used when validating more-specific
announcements against registry allocations (:mod:`repro.workloads.
registry` uses linear scans for its handful of blocks; the trie is the
scalable path and is exercised against it in the property tests).
"""

from __future__ import annotations

from typing import Dict, Generic, Iterator, List, Optional, Tuple, TypeVar

from repro.netbase.prefix import Prefix

V = TypeVar("V")


class _Node(Generic[V]):
    __slots__ = ("children", "value", "has_value")

    def __init__(self):
        self.children: "List[Optional[_Node]]" = [None, None]
        self.value: "V | None" = None
        self.has_value = False


class PrefixTrie(Generic[V]):
    """Maps prefixes to values with trie-based queries.

    Separate trees per IP version; keys are exact prefixes.

    >>> trie = PrefixTrie()
    >>> trie[Prefix("10.0.0.0/8")] = "block"
    >>> trie.longest_match(Prefix("10.2.3.0/24"))
    (Prefix('10.0.0.0/8'), 'block')
    """

    def __init__(self):
        self._roots: Dict[int, _Node] = {4: _Node(), 6: _Node()}
        self._size = 0

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def insert(self, prefix: Prefix, value: V) -> None:
        """Insert or replace the value at *prefix*."""
        node = self._roots[prefix.version]
        for bit in prefix.iter_host_bits():
            if node.children[bit] is None:
                node.children[bit] = _Node()
            node = node.children[bit]
        if not node.has_value:
            self._size += 1
        node.value = value
        node.has_value = True

    def remove(self, prefix: Prefix) -> "V | None":
        """Remove *prefix*; returns its value (None when absent).

        Dead branches are pruned so memory stays proportional to the
        stored set.
        """
        path: List[Tuple[_Node, int]] = []
        node = self._roots[prefix.version]
        for bit in prefix.iter_host_bits():
            child = node.children[bit]
            if child is None:
                return None
            path.append((node, bit))
            node = child
        if not node.has_value:
            return None
        value = node.value
        node.value = None
        node.has_value = False
        self._size -= 1
        # Prune empty leaves bottom-up.
        for parent, bit in reversed(path):
            child = parent.children[bit]
            if child.has_value or any(child.children):
                break
            parent.children[bit] = None
        return value

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def get(self, prefix: Prefix) -> "V | None":
        """Exact-match lookup."""
        node = self._walk(prefix)
        return node.value if node is not None and node.has_value else None

    def longest_match(
        self, prefix: Prefix
    ) -> "Tuple[Prefix, V] | None":
        """The most specific stored prefix covering *prefix*."""
        node = self._roots[prefix.version]
        best: "Tuple[int, V] | None" = None
        depth = 0
        if node.has_value:
            best = (0, node.value)  # the default route
        for bit in prefix.iter_host_bits():
            node = node.children[bit]
            if node is None:
                break
            depth += 1
            if node.has_value:
                best = (depth, node.value)
        if best is None:
            return None
        length, value = best
        mask_shift = prefix.max_bits - length
        network = (prefix.network >> mask_shift) << mask_shift
        return (
            Prefix.from_int(network, length, prefix.version),
            value,
        )

    def covered_by(self, prefix: Prefix) -> "Iterator[Tuple[Prefix, V]]":
        """All stored prefixes equal to or more specific than *prefix*."""
        node = self._walk(prefix)
        if node is None:
            return
        truncated = (
            prefix.network >> (prefix.max_bits - prefix.length)
            if prefix.length
            else 0
        )
        yield from self._iter_subtree(
            node, truncated, prefix.length, prefix.version
        )

    def covering(self, prefix: Prefix) -> "Iterator[Tuple[Prefix, V]]":
        """All stored prefixes equal to or less specific than *prefix*."""
        node = self._roots[prefix.version]
        depth = 0
        if node.has_value:
            yield Prefix.from_int(0, 0, prefix.version), node.value
        for bit in prefix.iter_host_bits():
            node = node.children[bit]
            if node is None:
                return
            depth += 1
            if node.has_value:
                shift = prefix.max_bits - depth
                network = (prefix.network >> shift) << shift
                yield (
                    Prefix.from_int(network, depth, prefix.version),
                    node.value,
                )

    def overlaps(self, prefix: Prefix) -> bool:
        """True when any stored prefix overlaps *prefix*."""
        if next(self.covering(prefix), None) is not None:
            return True
        return next(self.covered_by(prefix), None) is not None

    # ------------------------------------------------------------------
    # iteration / dunder
    # ------------------------------------------------------------------
    def items(self) -> "Iterator[Tuple[Prefix, V]]":
        """All (prefix, value) pairs, v4 first, lexicographic."""
        for version in (4, 6):
            yield from self._iter_subtree(
                self._roots[version], 0, 0, version
            )

    def _walk(self, prefix: Prefix) -> "Optional[_Node]":
        node = self._roots[prefix.version]
        for bit in prefix.iter_host_bits():
            node = node.children[bit]
            if node is None:
                return None
        return node

    def _iter_subtree(
        self, node: _Node, network: int, depth: int, version: int
    ) -> "Iterator[Tuple[Prefix, V]]":
        max_bits = 32 if version == 4 else 128
        if node.has_value:
            shifted = network << (max_bits - depth) if depth else 0
            yield Prefix.from_int(shifted, depth, version), node.value
        for bit in (0, 1):
            child = node.children[bit]
            if child is not None:
                yield from self._iter_subtree(
                    child, (network << 1) | bit, depth + 1, version
                )

    def __setitem__(self, prefix: Prefix, value: V) -> None:
        self.insert(prefix, value)

    def __getitem__(self, prefix: Prefix) -> V:
        value = self.get(prefix)
        if value is None and not self.__contains__(prefix):
            raise KeyError(str(prefix))
        return value  # type: ignore[return-value]

    def __contains__(self, prefix: Prefix) -> bool:
        node = self._walk(prefix)
        return node is not None and node.has_value

    def __len__(self) -> int:
        return self._size

    def __repr__(self) -> str:
        return f"PrefixTrie(size={self._size})"
