"""The Loc-RIB: the router's selected best route per prefix."""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.netbase.prefix import Prefix
from repro.rib.route import Route


class LocRIB:
    """Best routes selected by the decision process, keyed by prefix."""

    __slots__ = ("_best",)

    def __init__(self):
        self._best: Dict[Prefix, Route] = {}

    def install(self, route: Route) -> "Route | None":
        """Install *route* as best, returning the replaced entry."""
        previous = self._best.get(route.prefix)
        self._best[route.prefix] = route
        return previous

    def update(self, route: Route) -> "tuple[bool, Route | None]":
        """Install *route* unless an equal entry is already best.

        Returns ``(changed, previous)`` with a single table lookup —
        the hot path the router's reconsideration takes for every
        decision.  When the stored entry equals *route* the table keeps
        the existing instance (its ``learned_at`` is the original one).
        """
        previous = self._best.get(route.prefix)
        if previous is not None and previous == route:
            return False, previous
        self._best[route.prefix] = route
        return True, previous

    def remove(self, prefix: Prefix) -> "Route | None":
        """Remove the best route for *prefix*, returning it."""
        return self._best.pop(prefix, None)

    def get(self, prefix: Prefix) -> Optional[Route]:
        """The current best route, or None when unreachable."""
        return self._best.get(prefix)

    def prefixes(self) -> "list[Prefix]":
        """All reachable prefixes (snapshot list)."""
        return list(self._best)

    def __len__(self) -> int:
        return len(self._best)

    def __contains__(self, prefix: Prefix) -> bool:
        return prefix in self._best

    def __iter__(self) -> Iterator[Route]:
        return iter(self._best.values())
