"""The route object stored in RIBs.

A :class:`Route` binds a prefix to a set of path attributes plus the
*local* metadata the decision process needs but the wire never carries:
which peer the route came from, whether the session was eBGP or iBGP,
the IGP cost to the next hop, and when it was learned.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.bgp.attributes import PathAttributes
from repro.netbase.asn import ASN
from repro.netbase.prefix import Prefix

#: LOCAL_PREF assumed when the attribute is absent (RFC 4271 default
#: behavior is implementation-defined; 100 is the universal default).
DEFAULT_LOCAL_PREF = 100


class RouteSource(enum.Enum):
    """How a route entered the RIB."""

    EBGP = "ebgp"
    IBGP = "ibgp"
    LOCAL = "local"  # originated by this router (static/network statement)


class Route:
    """One candidate path for one prefix.

    Routes are immutable; policy transforms produce new instances via
    :meth:`with_attributes`.
    """

    __slots__ = (
        "_prefix",
        "_attributes",
        "_source",
        "_peer_id",
        "_peer_asn",
        "_peer_address",
        "_igp_cost",
        "_learned_at",
        "_neighbor",
    )

    def __init__(
        self,
        prefix: Prefix,
        attributes: PathAttributes,
        *,
        source: RouteSource = RouteSource.LOCAL,
        peer_id: Optional[str] = None,
        peer_asn: Optional[int] = None,
        peer_address: Optional[str] = None,
        igp_cost: int = 0,
        learned_at: float = 0.0,
    ):
        self._prefix = prefix
        self._attributes = attributes
        self._source = source
        self._peer_id = peer_id
        self._peer_asn = ASN(peer_asn) if peer_asn is not None else None
        self._peer_address = peer_address
        self._igp_cost = int(igp_cost)
        self._learned_at = float(learned_at)

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def prefix(self) -> Prefix:
        """The destination prefix."""
        return self._prefix

    @property
    def attributes(self) -> PathAttributes:
        """The path attributes."""
        return self._attributes

    @property
    def source(self) -> RouteSource:
        """eBGP, iBGP or locally originated."""
        return self._source

    @property
    def peer_id(self) -> Optional[str]:
        """Router ID of the advertising peer (None for local routes)."""
        return self._peer_id

    @property
    def peer_asn(self) -> "ASN | None":
        """ASN of the advertising peer."""
        return self._peer_asn

    @property
    def peer_address(self) -> Optional[str]:
        """Session address of the advertising peer."""
        return self._peer_address

    @property
    def igp_cost(self) -> int:
        """IGP distance to the BGP next hop (hot-potato input)."""
        return self._igp_cost

    @property
    def learned_at(self) -> float:
        """Timestamp when the route was (last) installed."""
        return self._learned_at

    @property
    def effective_local_pref(self) -> int:
        """LOCAL_PREF, defaulting when the attribute is absent."""
        local_pref = self._attributes.local_pref
        return DEFAULT_LOCAL_PREF if local_pref is None else local_pref

    @property
    def effective_med(self) -> int:
        """MED, treating absence as 0 (the common vendor default)."""
        med = self._attributes.med
        return 0 if med is None else med

    @property
    def neighbor_asn(self) -> "ASN | None":
        """First ASN in the AS path (for MED comparability).

        Cached lazily (the slot stays unset until first access): the
        MED tie-breaker reads this repeatedly for every candidate.
        """
        try:
            return self._neighbor
        except AttributeError:
            self._neighbor = self._attributes.as_path.first_asn
            return self._neighbor

    # ------------------------------------------------------------------
    # derivation
    # ------------------------------------------------------------------
    def with_attributes(self, attributes: PathAttributes) -> "Route":
        """Return a copy carrying different attributes."""
        return Route(
            self._prefix,
            attributes,
            source=self._source,
            peer_id=self._peer_id,
            peer_asn=self._peer_asn,
            peer_address=self._peer_address,
            igp_cost=self._igp_cost,
            learned_at=self._learned_at,
        )

    def with_igp_cost(self, igp_cost: int) -> "Route":
        """Return a copy with a different IGP cost to the next hop."""
        return Route(
            self._prefix,
            self._attributes,
            source=self._source,
            peer_id=self._peer_id,
            peer_asn=self._peer_asn,
            peer_address=self._peer_address,
            igp_cost=igp_cost,
            learned_at=self._learned_at,
        )

    # ------------------------------------------------------------------
    # comparison
    # ------------------------------------------------------------------
    def same_announcement(self, other: "Route") -> bool:
        """True when prefix and attributes (wire content) are equal."""
        return (
            self._prefix == other._prefix
            and self._attributes == other._attributes
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Route):
            return NotImplemented
        return (
            self._prefix == other._prefix
            and self._attributes == other._attributes
            and self._source == other._source
            and self._peer_id == other._peer_id
            and self._igp_cost == other._igp_cost
        )

    def __hash__(self) -> int:
        return hash(
            (self._prefix, self._attributes, self._source, self._peer_id)
        )

    def __repr__(self) -> str:
        return (
            f"Route({self._prefix}, path='{self._attributes.as_path}',"
            f" source={self._source.value}, peer={self._peer_id})"
        )
