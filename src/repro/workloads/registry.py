"""A synthetic RIR allocation registry.

The §4 cleaning step needs "current and historical allocation
information from the regional registries" to drop messages containing
resources that were unallocated at message time.  This registry records
(resource, allocation date) pairs, implements the
:class:`repro.analysis.cleaning.AllocationOracle` protocol, and the
workload generator deliberately leaves a few ASNs/prefixes out so the
cleaning path has something to remove.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.netbase.prefix import Prefix


@dataclass(frozen=True)
class AllocationRecord:
    """One allocated resource with its allocation time."""

    resource: str  # "AS64500" or a prefix string
    allocated_at: float

    def __str__(self) -> str:
        return f"{self.resource} (since t={self.allocated_at})"


class AllocationRegistry:
    """Allocation oracle with per-resource allocation dates.

    Prefix queries succeed when the exact prefix *or any covering
    block* was allocated: registries allocate blocks, networks announce
    more-specifics out of them.
    """

    def __init__(self):
        self._asns: Dict[int, float] = {}
        self._prefix_blocks: Dict[int, "List[tuple]"] = {4: [], 6: []}
        self._sorted = True

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def allocate_asn(self, asn: int, *, at: float = 0.0) -> None:
        """Record that *asn* is allocated from time *at* onward."""
        existing = self._asns.get(int(asn))
        if existing is None or at < existing:
            self._asns[int(asn)] = float(at)

    def allocate_prefix(self, prefix: "Prefix | str", *, at: float = 0.0) -> None:
        """Record that *prefix* (a covering block) is allocated."""
        resolved = prefix if isinstance(prefix, Prefix) else Prefix(prefix)
        self._prefix_blocks[resolved.version].append((resolved, float(at)))
        self._sorted = False

    def allocate_all(
        self, asns: "list[int]" = (), prefixes: "list" = (), *, at: float = 0.0
    ) -> None:
        """Bulk registration convenience."""
        for asn in asns:
            self.allocate_asn(asn, at=at)
        for prefix in prefixes:
            self.allocate_prefix(prefix, at=at)

    # ------------------------------------------------------------------
    # oracle protocol
    # ------------------------------------------------------------------
    def asn_allocated(self, asn: int, when: float) -> bool:
        """True when *asn* was allocated at time *when*."""
        allocated_at = self._asns.get(int(asn))
        return allocated_at is not None and allocated_at <= when

    def prefix_allocated(self, prefix: Prefix, when: float) -> bool:
        """True when a block covering *prefix* was allocated by *when*."""
        for block, allocated_at in self._prefix_blocks[prefix.version]:
            if allocated_at <= when and block.contains(prefix):
                return True
        return False

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def asn_count(self) -> int:
        """Number of registered ASNs."""
        return len(self._asns)

    def prefix_block_count(self) -> int:
        """Number of registered prefix blocks."""
        return sum(len(blocks) for blocks in self._prefix_blocks.values())

    def records(self) -> "List[AllocationRecord]":
        """Every registration as a record list (for reports)."""
        items: List[AllocationRecord] = [
            AllocationRecord(f"AS{asn}", at)
            for asn, at in sorted(self._asns.items())
        ]
        for version in (4, 6):
            for block, at in self._prefix_blocks[version]:
                items.append(AllocationRecord(str(block), at))
        return items

    def __repr__(self) -> str:
        return (
            f"AllocationRegistry(asns={self.asn_count()},"
            f" blocks={self.prefix_block_count()})"
        )
