"""The synthetic internet: topology + practices + events + collectors.

:class:`InternetModel` assembles everything into a runnable simulation
of one measurement day:

1. generate the AS topology (:mod:`repro.workloads.topology_gen`);
2. instantiate one router per AS with a vendor drawn from the
   configured mix, Gao-Rexford policies on every session, and the AS's
   community practice (geo-tagger / egress cleaner / ingress cleaner /
   ignorer);
3. peer route collectors with a sample of ASes (including one
   transparent IXP route server to exercise the §4 path repair);
4. originate all prefixes and converge ("warm-up", before the day);
5. schedule RIPE-style beacons plus a day of background events (link
   flaps, prefix flaps, MED churn, prepend changes);
6. run the day and hand the collector archives to the analysis layer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.beacons.origin import BeaconOrigin
from repro.beacons.schedule import BeaconSchedule, ripe_beacon_prefixes
from repro.netbase.prefix import Prefix
from repro.netbase.timebase import SECONDS_PER_DAY, parse_utc
from repro.policy.engine import PolicyChain, RoutingPolicy
from repro.policy.filters import (
    PrependASN,
    SetMED,
    StripAllCommunities,
)
from repro.policy.geo import GeoTagger
from repro.simulator.network import Network
from repro.simulator.router import Router
from repro.simulator.session import BGPSession
from repro.vendors.profiles import (
    BIRD,
    BIRD2,
    CISCO_IOS,
    CISCO_IOS_XR,
    JUNOS,
    VendorProfile,
)
from repro.workloads.practices import (
    CommunityPractice,
    GaoRexfordExportFilter,
    RelationshipImportPolicy,
    ScrubInternalTags,
)
from repro.workloads.registry import AllocationRegistry
from repro.workloads.topology_gen import (
    ASRole,
    ASSpec,
    AdjacencySpec,
    Relationship,
    TopologyParams,
    TopologySpec,
    generate_topology,
)

#: Default vendor mix, roughly matching deployment folklore: Cisco
#: variants dominate, Juniper holds the high end, BIRD runs the route
#: servers and hobby edges.
DEFAULT_VENDOR_MIX: "Tuple[Tuple[VendorProfile, float], ...]" = (
    (CISCO_IOS, 0.45),
    (CISCO_IOS_XR, 0.10),
    (JUNOS, 0.25),
    (BIRD, 0.12),
    (BIRD2, 0.08),
)


@dataclass
class InternetConfig:
    """All dials for one simulated measurement day."""

    topology: "TopologyParams" = field(default_factory=TopologyParams)
    #: UTC midnight of the simulated day.
    day_start: float = field(
        default_factory=lambda: parse_utc("2020-03-15")
    )
    #: Community practice fractions among transit/tier-1 ASes; they
    #: form cumulative bands over a uniform [0, 1) roll, so they must
    #: sum to <= 1 (the remainder are ignorers).
    tagger_fraction: float = 0.85
    cleaner_egress_fraction: float = 0.10
    cleaner_ingress_fraction: float = 0.05
    #: Fraction of ASes that scrub their internal relationship tags.
    scrub_internal_fraction: float = 0.5
    vendor_mix: "Tuple[Tuple[VendorProfile, float], ...]" = (
        DEFAULT_VENDOR_MIX
    )
    #: Collector names; each peers with ``collector_peer_fraction`` of
    #: the ASes.
    collector_names: "Tuple[str, ...]" = ("rrc00", "route-views2")
    collector_peer_fraction: float = 0.35
    #: Probability that a collector peer applies egress community
    #: hygiene on its collector-facing session (the paper's AS20811
    #: pattern: >99% of its announcements arrive community-free,
    #: turning upstream community exploration into `nn` duplicates).
    collector_peer_clean_fraction: float = 0.12
    #: One collector peer acts as a transparent IXP route server.
    include_route_server: bool = True
    #: Inject unallocated-resource noise for the cleaning pipeline.
    include_bogons: bool = True
    beacon_count: int = 4
    #: Background event counts over the day.
    link_flaps: int = 28
    prefix_flaps: int = 24
    med_churn_events: int = 90
    #: Bias link-flap selection toward sessions that are part of a
    #: parallel-link group: failing one of several parallel links is
    #: the paper's Exp1/Exp2 stimulus (internal next-hop change) and
    #: produces `nn`/`nc` instead of genuine path changes.
    parallel_flap_bias: float = 0.65
    #: Collector peering-session resets per day: the peer re-sends its
    #: full table on re-establishment, a classic duplicate (`nn`)
    #: source in real archives.
    collector_session_resets: int = 60
    #: Origin-side community toggles (config/TE changes): the dominant
    #: real-world source of `nc` announcements — the path is untouched
    #: while the community attribute changes everywhere downstream.
    community_churn_events: int = 150
    prepend_change_events: int = 40
    #: Session propagation delay range (seconds).
    delay_range: "Tuple[float, float]" = (0.005, 0.05)
    mrai: float = 0.0
    #: Coalesce same-fire-time deliveries per session into one event
    #: (fewer heap operations; off = one event per message, mainly for
    #: perf A/B comparisons).  With this model's randomly drawn session
    #: delays the collector output is bit-identical either way.
    delivery_batching: bool = True
    #: Collector archive policy: ``full`` keeps every message in
    #: memory, ``ring:N`` retains only the newest N, ``mrt-spill``
    #: streams the archive to an MRT file on disk (bounded memory at
    #: any run length; replayable through the mrt-replay scenarios).
    archive_policy: str = "full"
    #: Directory for ``mrt-spill`` archives (None: system temp).
    spill_dir: "Optional[str]" = None
    seed: int = 424242
    #: Simulated duration of the "day" in seconds; shorter values give
    #: proportionally faster runs (background events squeeze into the
    #: window, beacons still follow their absolute schedule).
    day_seconds: float = SECONDS_PER_DAY

    @classmethod
    def small(cls, **overrides) -> "InternetConfig":
        """A fast test-sized internet (tens of ASes)."""
        params = TopologyParams(
            tier1_count=2,
            transit_count=5,
            stub_count=12,
            seed=7,
        )
        config = cls(
            topology=params,
            beacon_count=2,
            link_flaps=6,
            prefix_flaps=5,
            med_churn_events=6,
            community_churn_events=10,
            prepend_change_events=2,
            collector_session_resets=3,
            collector_peer_fraction=0.4,
            seed=7,
        )
        for key, value in overrides.items():
            setattr(config, key, value)
        return config

    @classmethod
    def mar20(cls, **overrides) -> "InternetConfig":
        """The *d_mar20*-like default day (medium scale)."""
        config = cls()
        for key, value in overrides.items():
            setattr(config, key, value)
        return config


@dataclass
class SimulatedDay:
    """Everything produced by one :meth:`InternetModel.run` call."""

    config: InternetConfig
    topology: TopologySpec
    network: Network
    registry: AllocationRegistry
    beacon_prefixes: "List[Prefix]"
    practices: "Dict[int, CommunityPractice]"
    day_start: float

    @property
    def day_end(self) -> float:
        """End of the simulated window (midnight for full days)."""
        return self.day_start + self.config.day_seconds

    def collector(self, name: str):
        """Access one collector by name."""
        return self.network.collectors[name]

    def collectors(self) -> "List":
        """All collectors."""
        return list(self.network.collectors.values())

    def total_collected_messages(self) -> int:
        """Messages archived across all collectors."""
        return sum(
            collector.message_count() for collector in self.collectors()
        )


class InternetModel:
    """Builder/runner for one simulated measurement day."""

    def __init__(self, config: "InternetConfig | None" = None):
        self.config = config or InternetConfig()
        # One generator seeded here drives every day-schedule draw;
        # the topology layout draws only from its own seed inside
        # generate_topology.  Nothing uses the global random module,
        # so identical configs are bit-reproducible and seed sweeps
        # rerun the same internet under different event randomness.
        self._rng = random.Random(self.config.seed)
        self.topology = generate_topology(self.config.topology)
        self.registry = AllocationRegistry()
        self.network = Network(
            start_time=self.config.day_start - 7200.0,
            batch_delivery=self.config.delivery_batching,
            archive_policy=self.config.archive_policy,
            spill_dir=self.config.spill_dir,
        )
        #: Live sinks attached to every collector at creation time, so
        #: they see the warm-up convergence traffic exactly like the
        #: archive does (see :meth:`attach_collector_sink`).
        self._collector_sinks: "List" = []
        self.practices: Dict[int, CommunityPractice] = {}
        self._routers: Dict[int, Router] = {}
        self._taggers: Dict[int, GeoTagger] = {}
        self._scrubs: Dict[int, bool] = {}
        self._adjacency_sessions: List[BGPSession] = []
        self._parallel_sessions: List[BGPSession] = []
        self._collector_sessions: List[BGPSession] = []
        self.beacon_prefixes: List[Prefix] = []
        self._beacon_origins: List[BeaconOrigin] = []
        self._bogon_prefixes: List[Prefix] = []

    # ------------------------------------------------------------------
    # pipeline attachment
    # ------------------------------------------------------------------
    def attach_collector_sink(self, sink) -> "InternetModel":
        """Stream every collected message to *sink*, live.

        Must be called before :meth:`build` (collectors are wired at
        creation so sinks observe warm-up convergence exactly like the
        archives do).  Returns self for chaining.
        """
        if self._routers:
            raise RuntimeError(
                "attach_collector_sink must be called before build()"
            )
        self._collector_sinks.append(sink)
        return self

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def build(self) -> "InternetModel":
        """Construct the network (idempotence is not supported)."""
        self._assign_practices()
        self._create_routers()
        self._create_sessions()
        self._create_collectors()
        self._register_allocations()
        self._originate_prefixes()
        self.network.converge(max_events=5_000_000)
        return self

    def _assign_practices(self) -> None:
        config = self.config
        rng = self._rng
        transit_like = self.topology.ases_by_role(
            ASRole.TIER1
        ) + self.topology.ases_by_role(ASRole.TRANSIT)
        for spec in transit_like:
            roll = rng.random()
            if roll < config.tagger_fraction:
                practice = CommunityPractice.TAGGER
            elif roll < config.tagger_fraction + config.cleaner_egress_fraction:
                practice = CommunityPractice.CLEANER_EGRESS
            elif roll < (
                config.tagger_fraction
                + config.cleaner_egress_fraction
                + config.cleaner_ingress_fraction
            ):
                practice = CommunityPractice.CLEANER_INGRESS
            else:
                practice = CommunityPractice.IGNORER
            self.practices[spec.asn] = practice
        for spec in self.topology.ases_by_role(ASRole.STUB):
            # Stubs occasionally clean; mostly they ignore.
            roll = rng.random()
            if roll < config.cleaner_egress_fraction:
                self.practices[spec.asn] = CommunityPractice.CLEANER_EGRESS
            else:
                self.practices[spec.asn] = CommunityPractice.IGNORER
        for asn in self.practices:
            self._scrubs[asn] = (
                rng.random() < config.scrub_internal_fraction
            )

    def _vendor_for(self, asn: int) -> VendorProfile:
        roll = self._rng.random()
        cumulative = 0.0
        for vendor, weight in self.config.vendor_mix:
            cumulative += weight
            if roll < cumulative:
                return vendor
        return self.config.vendor_mix[-1][0]

    def _create_routers(self) -> None:
        for spec in sorted(
            self.topology.ases.values(), key=lambda item: item.asn
        ):
            router = self.network.add_router(
                f"as{spec.asn}",
                spec.asn,
                router_id=_router_id_for(spec.asn),
                vendor=self._vendor_for(spec.asn),
            )
            self._routers[spec.asn] = router
        # Build one GeoTagger per tagging AS covering every ingress
        # point it will have; locations are attached per session later.
        for spec in sorted(
            self.topology.ases.values(), key=lambda item: item.asn
        ):
            if self.practices.get(spec.asn) != CommunityPractice.TAGGER:
                continue
            locations = {}
            for adjacency in self.topology.adjacencies:
                if spec.asn not in (adjacency.asn_a, adjacency.asn_b):
                    continue
                other = (
                    adjacency.asn_b
                    if adjacency.asn_a == spec.asn
                    else adjacency.asn_a
                )
                for index, city in enumerate(adjacency.cities):
                    locations[_ingress_name(other, index, city)] = city
            self._taggers[spec.asn] = GeoTagger(
                spec.asn & 0xFFFF, locations
            )

    def _create_sessions(self) -> None:
        for adjacency in self.topology.adjacencies:
            for index, city in enumerate(adjacency.cities):
                self._create_one_session(adjacency, index, city)

    def _create_one_session(
        self, adjacency: AdjacencySpec, index: int, city
    ) -> None:
        config = self.config
        router_a = self._routers[adjacency.asn_a]
        router_b = self._routers[adjacency.asn_b]
        rel_ab = adjacency.relationship  # A's view of B
        rel_ba = rel_ab.inverse()
        delay = self._rng.uniform(*config.delay_range)
        ingress_a = _ingress_name(adjacency.asn_b, index, city)
        ingress_b = _ingress_name(adjacency.asn_a, index, city)
        session = self.network.connect(
            router_a,
            router_b,
            delay=delay,
            mrai=config.mrai,
            policy_a=self._policy_for(
                adjacency.asn_a, rel_ab, adjacency, index
            ),
            policy_b=self._policy_for(
                adjacency.asn_b, rel_ba, adjacency, index
            ),
            ingress_point_a=ingress_a,
            ingress_point_b=ingress_b,
        )
        self._adjacency_sessions.append(session)
        if adjacency.link_count > 1:
            self._parallel_sessions.append(session)

    def _policy_for(
        self,
        local_asn: int,
        relationship_to_neighbor: Relationship,
        adjacency: AdjacencySpec,
        link_index: int,
    ) -> RoutingPolicy:
        """Build import/export chains for one session endpoint."""
        practice = self.practices.get(local_asn, CommunityPractice.IGNORER)
        import_steps = []
        if practice == CommunityPractice.CLEANER_INGRESS:
            import_steps.append(StripAllCommunities())
        tagger = self._taggers.get(local_asn)
        if tagger is not None:
            import_steps.append(tagger)
        import_steps.append(
            RelationshipImportPolicy(local_asn, relationship_to_neighbor)
        )
        export_steps = [
            GaoRexfordExportFilter(local_asn, relationship_to_neighbor)
        ]
        if self._scrubs.get(local_asn, False):
            export_steps.append(ScrubInternalTags(local_asn))
        if practice == CommunityPractice.CLEANER_EGRESS:
            export_steps.append(StripAllCommunities())
        if (
            relationship_to_neighbor == Relationship.PROVIDER
            and adjacency.link_count > 1
        ):
            # Multi-link customer: steer inbound traffic with MED.
            export_steps.append(SetMED(10 * (link_index + 1)))
        return RoutingPolicy(
            import_chain=PolicyChain(import_steps),
            export_chain=PolicyChain(export_steps),
        )

    def _create_collectors(self) -> None:
        config = self.config
        rng = self._rng
        all_specs = sorted(
            self.topology.ases.values(), key=lambda item: item.asn
        )
        route_server_assigned = not config.include_route_server
        for collector_name in config.collector_names:
            collector = self.network.add_collector(collector_name)
            for sink in self._collector_sinks:
                collector.attach_sink(sink)
            count = max(3, int(len(all_specs) * config.collector_peer_fraction))
            peers = rng.sample(all_specs, min(count, len(all_specs)))
            for spec in peers:
                router = self._routers[spec.asn]
                if not route_server_assigned:
                    router.transparent = True
                    route_server_assigned = True
                export_steps = [
                    GaoRexfordExportFilter(
                        spec.asn, Relationship.CUSTOMER
                    )
                ]
                if self._scrubs.get(spec.asn, False):
                    export_steps.append(ScrubInternalTags(spec.asn))
                cleans = (
                    self.practices.get(spec.asn)
                    == CommunityPractice.CLEANER_EGRESS
                    or rng.random() < config.collector_peer_clean_fraction
                )
                if cleans:
                    export_steps.append(StripAllCommunities())
                session = self.network.connect(
                    collector,
                    router,
                    delay=self._rng.uniform(*config.delay_range),
                    policy_b=RoutingPolicy(
                        export_chain=PolicyChain(export_steps)
                    ),
                )
                self._collector_sessions.append(session)

    def _register_allocations(self) -> None:
        """Register every legitimate resource; leave bogons out."""
        allocation_time = self.config.day_start - 10 * 365 * 86400.0
        for spec in self.topology.ases.values():
            self.registry.allocate_asn(spec.asn, at=allocation_time)
            for prefix in spec.prefixes:
                self.registry.allocate_prefix(prefix, at=allocation_time)
        self.registry.allocate_prefix(
            Prefix("84.205.64.0/19"), at=allocation_time
        )
        for collector in self.config.collector_names:
            self.registry.allocate_asn(12_456, at=allocation_time)

    def _originate_prefixes(self) -> None:
        for spec in sorted(
            self.topology.ases.values(), key=lambda item: item.asn
        ):
            router = self._routers[spec.asn]
            for prefix in spec.prefixes:
                router.originate(prefix)
        if self.config.include_bogons:
            self._originate_bogons()

    def _originate_bogons(self) -> None:
        """Unregistered resources that the cleaning pipeline must drop."""
        stubs = self.topology.ases_by_role(ASRole.STUB)
        if not stubs:
            return
        # A legitimate AS leaking a prefix from unallocated space.
        leaky = self._routers[stubs[0].asn]
        bogon_prefix = Prefix("102.66.0.0/24")
        leaky.originate(bogon_prefix)
        self._bogon_prefixes.append(bogon_prefix)

    # ------------------------------------------------------------------
    # day schedule
    # ------------------------------------------------------------------
    def schedule_day(self) -> None:
        """Queue beacons and background events for the day."""
        self._schedule_beacons()
        self._schedule_link_flaps()
        self._schedule_prefix_flaps()
        self._schedule_med_churn()
        self._schedule_community_churn()
        self._schedule_prepend_changes()
        self._schedule_collector_resets()

    def _beacon_hosts(self) -> "List[ASSpec]":
        """Multihomed stubs make the best beacon hosts."""
        stubs = self.topology.ases_by_role(ASRole.STUB)
        multihomed = [
            spec for spec in stubs if self.topology.degree(spec.asn) >= 2
        ]
        pool = multihomed or stubs
        hosts = []
        for index in range(self.config.beacon_count):
            hosts.append(pool[index % len(pool)])
        return hosts

    def _schedule_beacons(self) -> None:
        schedule = BeaconSchedule()
        prefixes = ripe_beacon_prefixes(max(self.config.beacon_count, 1))
        allocation_time = self.config.day_start - 10 * 365 * 86400.0
        window_end = self.config.day_start + self.config.day_seconds
        for spec, prefix in zip(self._beacon_hosts(), prefixes):
            origin = BeaconOrigin(
                self._routers[spec.asn], prefix, schedule=schedule
            )
            origin.schedule_day(self.config.day_start, until=window_end)
            self._beacon_origins.append(origin)
            self.beacon_prefixes.append(prefix)
            self.registry.allocate_prefix(prefix, at=allocation_time)

    def _day_times(self, count: int, *, margin: float = 600.0) -> "List[float]":
        start = self.config.day_start + margin
        end = self.config.day_start + self.config.day_seconds - margin
        end = max(end, start)
        return sorted(
            self._rng.uniform(start, end) for _ in range(count)
        )

    def _schedule_link_flaps(self) -> None:
        for when in self._day_times(self.config.link_flaps):
            if (
                self._parallel_sessions
                and self._rng.random() < self.config.parallel_flap_bias
            ):
                session = self._rng.choice(self._parallel_sessions)
            else:
                session = self._rng.choice(self._adjacency_sessions)
            duration = self._rng.uniform(30.0, 300.0)
            self.network.queue.schedule_at(
                when, _make_flap(self.network, session, duration)
            )

    def _schedule_collector_resets(self) -> None:
        if not self._collector_sessions:
            return
        for when in self._day_times(self.config.collector_session_resets):
            session = self._rng.choice(self._collector_sessions)
            duration = self._rng.uniform(5.0, 30.0)
            self.network.queue.schedule_at(
                when, _make_flap(self.network, session, duration)
            )

    def _schedule_prefix_flaps(self) -> None:
        candidates = [
            (spec.asn, prefix)
            for spec in self.topology.ases.values()
            for prefix in spec.prefixes
        ]
        if not candidates:
            return
        for when in self._day_times(self.config.prefix_flaps):
            asn, prefix = self._rng.choice(candidates)
            router = self._routers[asn]
            downtime = self._rng.uniform(60.0, 600.0)
            self.network.queue.schedule_at(
                when, _make_prefix_flap(self.network, router, prefix, downtime)
            )

    def _schedule_med_churn(self) -> None:
        stubs = [
            spec
            for spec in self.topology.ases_by_role(ASRole.STUB)
            if spec.prefixes
        ]
        if not stubs:
            return
        for when in self._day_times(self.config.med_churn_events):
            spec = self._rng.choice(stubs)
            router = self._routers[spec.asn]
            prefix = self._rng.choice(spec.prefixes)
            med = self._rng.choice((0, 50, 100, 200))
            self.network.queue.schedule_at(
                when, _make_med_change(router, prefix, med)
            )

    def _schedule_community_churn(self) -> None:
        """Origin-side community toggles: the path never changes, the
        community attribute does — pure `nc` generators (cleaned to
        `nn` by egress-cleaning ASes on the way)."""
        origins = [
            spec
            for spec in sorted(
                self.topology.ases.values(), key=lambda item: item.asn
            )
            if spec.prefixes
        ]
        if not origins:
            return
        for when in self._day_times(self.config.community_churn_events):
            spec = self._rng.choice(origins)
            router = self._routers[spec.asn]
            prefix = self._rng.choice(spec.prefixes)
            variant = self._rng.randint(0, 5)
            self.network.queue.schedule_at(
                when, _make_community_change(router, prefix, variant)
            )

    def _schedule_prepend_changes(self) -> None:
        """Traffic-engineering events producing xc/xn announcements."""
        stub_sessions: "List[Tuple[Router, BGPSession]]" = []
        single_homed: "List[Tuple[Router, BGPSession]]" = []
        for session in self._adjacency_sessions:
            for node in (session.node_a, session.node_b):
                if not isinstance(node, Router):
                    continue
                spec = self.topology.ases.get(int(node.asn))
                if spec is not None and spec.role == ASRole.STUB:
                    stub_sessions.append((node, session))
                    if self.topology.degree(spec.asn) == 1:
                        single_homed.append((node, session))
        if not stub_sessions:
            return
        # Single-homed stubs keep their (now longer) path as best
        # everywhere, so their prepend changes surface as xc/xn rather
        # than being masked by a path switch.
        preferred = single_homed or stub_sessions
        for when in self._day_times(self.config.prepend_change_events):
            pool = preferred if self._rng.random() < 0.8 else stub_sessions
            router, session = self._rng.choice(pool)
            count = self._rng.choice((1, 2, 3))
            self.network.queue.schedule_at(
                when, _make_prepend_change(router, session, count)
            )

    # ------------------------------------------------------------------
    # run
    # ------------------------------------------------------------------
    def run(self) -> SimulatedDay:
        """Build (if needed), schedule the day, run it, return results."""
        if not self._routers:
            self.build()
        self.schedule_day()
        self.run_day()
        return self.simulated_day()

    def run_day(self) -> None:
        """Execute the scheduled day (build/schedule must be done).

        Split out of :meth:`run` so pipeline drivers that may abort
        mid-day (early stop) can still assemble the partial
        :class:`SimulatedDay` via :meth:`simulated_day`.
        """
        day_end = self.config.day_start + self.config.day_seconds
        self.network.run(until=day_end, max_events=20_000_000)
        # Let in-flight churn settle so archives end cleanly.
        self.network.run(max_events=2_000_000)

    def simulated_day(self) -> SimulatedDay:
        """The results container for the current network state."""
        return SimulatedDay(
            config=self.config,
            topology=self.topology,
            network=self.network,
            registry=self.registry,
            beacon_prefixes=list(self.beacon_prefixes),
            practices=dict(self.practices),
            day_start=self.config.day_start,
        )


# ----------------------------------------------------------------------
# event closures (module-level for picklability and clarity)
# ----------------------------------------------------------------------
def _make_flap(network: Network, session: BGPSession, duration: float):
    def flap() -> None:
        if not session.established:
            return
        session.bring_down()
        network.queue.schedule(duration, session.bring_up)

    return flap


def _make_prefix_flap(
    network: Network, router: Router, prefix: Prefix, downtime: float
):
    def start() -> None:
        if prefix not in router.originated_prefixes():
            return
        router.withdraw_origination(prefix)
        network.queue.schedule(
            downtime, lambda: router.originate(prefix)
        )

    return start


def _make_community_change(router: Router, prefix: Prefix, variant: int):
    from repro.bgp.community import Community, CommunitySet

    def change() -> None:
        if prefix not in router.originated_prefixes():
            return
        tag = Community.of(int(router.asn) & 0xFFFF, 700 + variant)
        router.originate(prefix, communities=CommunitySet((tag,)))

    return change


def _make_med_change(router: Router, prefix: Prefix, med: int):
    def change() -> None:
        if prefix in router.originated_prefixes():
            router.originate(prefix, med=med)

    return change


def _make_prepend_change(
    router: Router, session: BGPSession, count: int
):
    def change() -> None:
        if not session.established:
            return
        policy = router.policy_for(session)
        steps = [
            step
            for step in policy.export_chain.steps
            if not isinstance(step, PrependASN)
        ]
        steps.append(PrependASN(count))
        router.set_policy(
            session,
            RoutingPolicy(
                import_chain=policy.import_chain,
                export_chain=PolicyChain(steps),
            ),
        )
        router.refresh_exports(session)

    return change


def _router_id_for(asn: int) -> str:
    return f"10.{(asn >> 8) & 0xFF}.{asn & 0xFF}.1"


def _ingress_name(neighbor_asn: int, link_index: int, city) -> str:
    return f"as{neighbor_asn}-link{link_index}-{city.city}"
