"""The 10-year longitudinal model behind Figures 2 and 6 (*d_hist*).

The paper samples one full day every three months from 2010 to 2020 and
observes (a) growing absolute update counts with stable type shares and
(b) a stable ≈60% withdrawal-phase revelation ratio while unique
community counts grow multifold.

:class:`GrowthModel` produces an :class:`~repro.workloads.internet.
InternetConfig` per sampled day whose parameters grow with time:
topology size, interconnection density, collector peering breadth and
community (geo-tagging) adoption all increase 2010 → 2020, following
the growth trends the paper cites (Streibelt et al.'s 250% community
growth, doubling of collector sessions).

Running all 41 quarterly days at full size is slow, so the runner
defaults to one day per year with small per-day topologies; the bench
harness scales up when asked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro.analysis.classify import UpdateClassifier
from repro.analysis.longitudinal import DailySnapshot, LongitudinalSeries
from repro.analysis.observations import observations_from_collector
from repro.analysis.revealed import RevealedInfoAnalysis
from repro.netbase.timebase import parse_utc
from repro.workloads.internet import InternetConfig, InternetModel
from repro.workloads.topology_gen import TopologyParams

#: The paper's sampled quarters: March/June/September/December 15.
QUARTER_DAYS = ("03-15", "06-15", "09-15", "12-15")


def sampled_days(
    first_year: int = 2010,
    last_year: int = 2020,
    *,
    per_year: int = 1,
) -> "List[float]":
    """UTC midnights of the sampled measurement days.

    ``per_year=4`` reproduces the paper's full quarterly cadence;
    ``per_year=1`` (default) keeps laptop runtimes sane.
    """
    if not 1 <= per_year <= 4:
        raise ValueError("per_year must be between 1 and 4")
    days: List[float] = []
    for year in range(first_year, last_year + 1):
        for quarter in QUARTER_DAYS[:per_year]:
            days.append(parse_utc(f"{year}-{quarter}"))
    return sorted(days)


@dataclass
class GrowthModel:
    """Interpolates internet parameters across the decade."""

    #: Topology size at the 2010 and 2020 endpoints.
    tier1_2010: int = 2
    tier1_2020: int = 3
    transit_2010: int = 4
    transit_2020: int = 9
    stub_2010: int = 8
    stub_2020: int = 24
    #: Geo-tagging adoption (fraction of transit-like ASes).
    tagger_2010: float = 0.2
    tagger_2020: float = 0.55
    #: Collector peering breadth.
    peer_fraction_2010: float = 0.25
    peer_fraction_2020: float = 0.45
    #: Background event volume.
    flaps_2010: int = 6
    flaps_2020: int = 14
    base_seed: int = 20100101

    def _lerp(self, start: float, end: float, fraction: float) -> float:
        return start + (end - start) * fraction

    def config_for(self, day_start: float) -> InternetConfig:
        """Build the day's :class:`InternetConfig` from the growth curve."""
        year_fraction = min(
            max((day_start - parse_utc("2010-01-01"))
                / (parse_utc("2020-12-31") - parse_utc("2010-01-01")), 0.0),
            1.0,
        )
        params = TopologyParams(
            tier1_count=round(
                self._lerp(self.tier1_2010, self.tier1_2020, year_fraction)
            ),
            transit_count=round(
                self._lerp(
                    self.transit_2010, self.transit_2020, year_fraction
                )
            ),
            stub_count=round(
                self._lerp(self.stub_2010, self.stub_2020, year_fraction)
            ),
            seed=self.base_seed + int(day_start // 86400),
        )
        flaps = round(
            self._lerp(self.flaps_2010, self.flaps_2020, year_fraction)
        )
        # Event volumes scale with the growth curve so that the type
        # mix stays comparable across the decade (the paper: "despite
        # increased community usage, the share of all types is
        # relatively stable") while absolute counts grow.
        return InternetConfig(
            topology=params,
            day_start=day_start,
            tagger_fraction=self._lerp(
                self.tagger_2010, self.tagger_2020, year_fraction
            ),
            collector_peer_fraction=self._lerp(
                self.peer_fraction_2010,
                self.peer_fraction_2020,
                year_fraction,
            ),
            beacon_count=3,
            link_flaps=flaps,
            prefix_flaps=max(3, flaps // 2),
            med_churn_events=round(self._lerp(6, 30, year_fraction)),
            community_churn_events=round(
                self._lerp(15, 70, year_fraction)
            ),
            collector_session_resets=round(
                self._lerp(3, 14, year_fraction)
            ),
            prepend_change_events=round(self._lerp(1, 4, year_fraction)),
            collector_names=("rrc00",),
            seed=self.base_seed + int(day_start // 86400),
        )


class LongitudinalRunner:
    """Runs the sampled days and aggregates Figure 2 / Figure 6 series."""

    def __init__(
        self,
        *,
        growth: "GrowthModel | None" = None,
        days: "Optional[List[float]]" = None,
    ):
        self.growth = growth or GrowthModel()
        self.days = days if days is not None else sampled_days()

    def run_day(self, day_start: float) -> DailySnapshot:
        """Simulate one sampled day and summarize it."""
        config = self.growth.config_for(day_start)
        simulated = InternetModel(config).run()
        classifier = UpdateClassifier()
        revealed = RevealedInfoAnalysis()
        beacon_prefixes = set(simulated.beacon_prefixes)
        for collector in simulated.collectors():
            for observation in observations_from_collector(collector):
                classifier.observe(observation)
                if observation.prefix in beacon_prefixes:
                    revealed.observe(observation)
        return DailySnapshot(
            day=day_start,
            type_counts=classifier.counts,
            revealed=revealed.result(),
        )

    def run(self) -> LongitudinalSeries:
        """Simulate all sampled days."""
        series = LongitudinalSeries()
        for day_start in self.days:
            series.add(self.run_day(day_start))
        return series

    def iter_snapshots(self) -> Iterator[DailySnapshot]:
        """Generator variant for incremental reporting."""
        for day_start in self.days:
            yield self.run_day(day_start)
