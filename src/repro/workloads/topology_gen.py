"""Synthetic AS-level topology generation.

Builds a three-tier internet (tier-1 clique, transit providers, stub
edge networks) with Gao-Rexford relationships and *parallel
interconnections*: an AS pair may peer over several links in different
cities.  Parallel links are what makes community exploration visible —
a transit that geo-tags at ingress will tag the same route differently
depending on which of the parallel links it arrives over, and path
exploration walks through them.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.netbase.prefix import Prefix
from repro.policy.geo import CONTINENTS, GeoLocation

#: City pool used for interconnection points (continent, country, city).
CITY_POOL: "Tuple[Tuple[str, str, str], ...]" = (
    ("europe", "DE", "Frankfurt"),
    ("europe", "DE", "Berlin"),
    ("europe", "NL", "Amsterdam"),
    ("europe", "GB", "London"),
    ("europe", "FR", "Paris"),
    ("europe", "AT", "Vienna"),
    ("europe", "SE", "Stockholm"),
    ("north-america", "US", "Ashburn"),
    ("north-america", "US", "Dallas"),
    ("north-america", "US", "San Jose"),
    ("north-america", "US", "Chicago"),
    ("north-america", "US", "Seattle"),
    ("north-america", "CA", "Toronto"),
    ("asia", "JP", "Tokyo"),
    ("asia", "SG", "Singapore"),
    ("asia", "HK", "Hong Kong"),
    ("south-america", "BR", "Sao Paulo"),
    ("africa", "ZA", "Johannesburg"),
    ("oceania", "AU", "Sydney"),
)


class ASRole(enum.Enum):
    """Coarse position in the routing hierarchy."""

    TIER1 = "tier1"
    TRANSIT = "transit"
    STUB = "stub"


class Relationship(enum.Enum):
    """Business relationship from A's point of view toward B."""

    CUSTOMER = "customer"  # B is A's customer
    PROVIDER = "provider"  # B is A's provider
    PEER = "peer"

    def inverse(self) -> "Relationship":
        """The relationship from B's point of view."""
        if self == Relationship.CUSTOMER:
            return Relationship.PROVIDER
        if self == Relationship.PROVIDER:
            return Relationship.CUSTOMER
        return Relationship.PEER


@dataclass
class ASSpec:
    """One autonomous system in the generated topology."""

    asn: int
    role: ASRole
    name: str
    #: IPv4/IPv6 prefixes this AS originates.
    prefixes: "List[Prefix]" = field(default_factory=list)

    def __str__(self) -> str:
        return f"AS{self.asn} ({self.role.value})"


@dataclass
class AdjacencySpec:
    """One AS-level adjacency, possibly over several physical links."""

    asn_a: int
    asn_b: int
    #: Relationship from A's point of view toward B.
    relationship: Relationship
    #: Interconnection cities, one per parallel link (≥1).
    cities: "List[GeoLocation]" = field(default_factory=list)

    @property
    def link_count(self) -> int:
        """Number of parallel links."""
        return len(self.cities)


@dataclass
class TopologyParams:
    """Dial set for :func:`generate_topology`."""

    tier1_count: int = 4
    transit_count: int = 16
    stub_count: int = 60
    #: Providers per transit / stub (multihoming degree range).
    transit_provider_range: "Tuple[int, int]" = (2, 3)
    stub_provider_range: "Tuple[int, int]" = (1, 3)
    #: Lateral peering probability among transits.
    transit_peering_probability: float = 0.25
    #: Parallel-link count range for transit-and-above adjacencies.
    parallel_link_range: "Tuple[int, int]" = (1, 2)
    #: Prefixes originated per stub / transit / tier1.
    stub_prefix_range: "Tuple[int, int]" = (1, 3)
    transit_prefixes: int = 1
    tier1_prefixes: int = 1
    #: Fraction of stub prefixes that are IPv6.
    ipv6_fraction: float = 0.1
    seed: int = 20200315


@dataclass
class TopologySpec:
    """The generated topology: ASes plus adjacencies."""

    ases: "Dict[int, ASSpec]"
    adjacencies: "List[AdjacencySpec]"
    params: TopologyParams

    def ases_by_role(self, role: ASRole) -> "List[ASSpec]":
        """All ASes with the given role, ASN-ordered."""
        return sorted(
            (spec for spec in self.ases.values() if spec.role == role),
            key=lambda spec: spec.asn,
        )

    def all_prefixes(self) -> "List[Prefix]":
        """Every originated prefix."""
        out: List[Prefix] = []
        for spec in sorted(self.ases.values(), key=lambda item: item.asn):
            out.extend(spec.prefixes)
        return out

    def adjacency_count(self) -> int:
        """Number of AS-level adjacencies."""
        return len(self.adjacencies)

    def session_count(self) -> int:
        """Number of BGP sessions including parallel links."""
        return sum(adj.link_count for adj in self.adjacencies)

    def degree(self, asn: int) -> int:
        """AS-level degree of *asn*."""
        return sum(
            1
            for adj in self.adjacencies
            if asn in (adj.asn_a, adj.asn_b)
        )


def generate_topology(
    params: "TopologyParams | None" = None,
    *,
    rng: "random.Random | None" = None,
) -> TopologySpec:
    """Generate a deterministic three-tier topology from a seed.

    All randomness flows through one explicit ``random.Random`` — the
    caller may inject its own generator (the :class:`InternetModel`
    threads one through so a scenario seed pins every draw); by default
    a fresh generator is seeded from ``params.seed``.  The module-level
    ``random`` functions are never used, so unrelated code cannot
    perturb the layout.
    """
    params = params or TopologyParams()
    rng = rng if rng is not None else random.Random(params.seed)
    ases: Dict[int, ASSpec] = {}
    adjacencies: List[AdjacencySpec] = []
    next_asn = 3000

    def new_as(role: ASRole, label: str) -> ASSpec:
        nonlocal next_asn
        spec = ASSpec(asn=next_asn, role=role, name=label)
        ases[next_asn] = spec
        next_asn += rng.randint(1, 40)
        return spec

    tier1s = [
        new_as(ASRole.TIER1, f"tier1-{index}")
        for index in range(params.tier1_count)
    ]
    transits = [
        new_as(ASRole.TRANSIT, f"transit-{index}")
        for index in range(params.transit_count)
    ]
    stubs = [
        new_as(ASRole.STUB, f"stub-{index}")
        for index in range(params.stub_count)
    ]

    def pick_cities(count: int) -> "List[GeoLocation]":
        chosen = rng.sample(CITY_POOL, count)
        return [
            GeoLocation(continent, country, city)
            for continent, country, city in chosen
        ]

    def connect(
        spec_a: ASSpec,
        spec_b: ASSpec,
        relationship: Relationship,
        *,
        max_links: Optional[int] = None,
    ) -> None:
        low, high = params.parallel_link_range
        if max_links is not None:
            high = min(high, max_links)
        link_count = rng.randint(low, max(low, high))
        adjacencies.append(
            AdjacencySpec(
                asn_a=spec_a.asn,
                asn_b=spec_b.asn,
                relationship=relationship,
                cities=pick_cities(link_count),
            )
        )

    # Tier-1 clique (peering, multiple parallel links).
    for index, first in enumerate(tier1s):
        for second in tier1s[index + 1 :]:
            connect(first, second, Relationship.PEER)

    # Transits buy from several tier-1s.
    for transit in transits:
        low, high = params.transit_provider_range
        providers = rng.sample(tier1s, min(rng.randint(low, high), len(tier1s)))
        for provider in providers:
            connect(transit, provider, Relationship.PROVIDER)

    # Lateral transit peering.
    for index, first in enumerate(transits):
        for second in transits[index + 1 :]:
            if rng.random() < params.transit_peering_probability:
                connect(first, second, Relationship.PEER, max_links=2)

    # Stubs buy from transits (occasionally straight from a tier-1).
    for stub in stubs:
        low, high = params.stub_provider_range
        count = rng.randint(low, high)
        pool = transits if rng.random() < 0.9 else tier1s
        providers = rng.sample(pool, min(count, len(pool)))
        for provider in providers:
            connect(stub, provider, Relationship.PROVIDER, max_links=2)

    _assign_prefixes(rng, params, tier1s, transits, stubs)
    return TopologySpec(ases=ases, adjacencies=adjacencies, params=params)


def _assign_prefixes(rng, params, tier1s, transits, stubs) -> None:
    """Give every AS its originated prefixes (deterministic layout)."""
    v4_block = 0
    v6_block = 0

    def next_v4() -> Prefix:
        nonlocal v4_block
        prefix = Prefix.from_int(
            (100 << 24) | (v4_block << 8), 24, 4
        )
        v4_block += 1
        return prefix

    def next_v6() -> Prefix:
        nonlocal v6_block
        network = (0x2001_0DB8 << 96) | (v6_block << 80)
        prefix = Prefix.from_int(network, 48, 6)
        v6_block += 1
        return prefix

    for spec in tier1s:
        for _ in range(params.tier1_prefixes):
            spec.prefixes.append(next_v4())
    for spec in transits:
        for _ in range(params.transit_prefixes):
            spec.prefixes.append(next_v4())
    for spec in stubs:
        low, high = params.stub_prefix_range
        for _ in range(rng.randint(low, high)):
            if rng.random() < params.ipv6_fraction:
                spec.prefixes.append(next_v6())
            else:
                spec.prefixes.append(next_v4())
