"""Per-AS community practices and Gao-Rexford policy steps.

The paper's measurement hinges on how heterogeneously real ASes handle
communities.  We model four practices:

* ``tagger`` — adds geo communities at every tagged ingress (the
  AS3356 role in Figure 4);
* ``cleaner_egress`` — strips all communities when exporting (the
  AS20811 role in Figure 5: duplicates leak, information does not);
* ``cleaner_ingress`` — strips at import (the hygienic Exp4 behavior);
* ``ignorer`` — neither adds nor removes (the AS20205 role: blind
  propagation, the paper's majority case).

Gao-Rexford routing policy is implemented the way real networks do it:
an import step tags routes with an *internal* relationship community
and sets LOCAL_PREF; an export step filters on that tag (customer
routes go everywhere, peer/provider routes go only to customers).
Whether the internal tag is scrubbed at egress is itself part of the
AS's cleanliness — sloppy ASes leak relationship tags, which real
route collectors observe constantly.
"""

from __future__ import annotations

import enum
from repro.bgp.community import Community
from repro.policy.engine import PolicyContext, PolicyStep
from repro.workloads.topology_gen import Relationship

#: Internal relationship-tag local values (band 9000+ to stay clear of
#: the geo bands at 50-400).
REL_CUSTOMER = 9001
REL_PEER = 9002
REL_PROVIDER = 9003

_REL_VALUE = {
    Relationship.CUSTOMER: REL_CUSTOMER,
    Relationship.PEER: REL_PEER,
    Relationship.PROVIDER: REL_PROVIDER,
}

#: LOCAL_PREF by relationship: prefer customer > peer > provider.
_REL_LOCAL_PREF = {
    Relationship.CUSTOMER: 200,
    Relationship.PEER: 150,
    Relationship.PROVIDER: 80,
}


class CommunityPractice(enum.Enum):
    """How an AS handles foreign communities."""

    TAGGER = "tagger"
    CLEANER_EGRESS = "cleaner_egress"
    CLEANER_INGRESS = "cleaner_ingress"
    IGNORER = "ignorer"


class RelationshipImportPolicy(PolicyStep):
    """Import side of Gao-Rexford: LOCAL_PREF + internal tag.

    *relationship* is the local AS's view of the neighbor the route
    comes from (a route from my CUSTOMER gets the customer tag).
    """

    def __init__(self, local_asn: int, relationship: Relationship):
        self._local_asn = int(local_asn) & 0xFFFF
        self._relationship = relationship
        self._tag = Community.of(self._local_asn, _REL_VALUE[relationship])
        self._local_pref = _REL_LOCAL_PREF[relationship]
        self._stale_tags = tuple(
            Community.of(self._local_asn, value)
            for value in (REL_CUSTOMER, REL_PEER, REL_PROVIDER)
            if value != _REL_VALUE[relationship]
        )

    @property
    def relationship(self) -> Relationship:
        """The neighbor relationship this step encodes."""
        return self._relationship

    def apply(self, attributes, context: PolicyContext):
        # Replace any stale own relationship tag (route moved between
        # ingress sessions of different relationships).
        communities = attributes.communities.remove(*self._stale_tags)
        return attributes.replace(
            local_pref=self._local_pref,
            communities=communities.add(self._tag),
        )

    def describe(self) -> str:
        return f"gao-rexford-import({self._relationship.value})"


class GaoRexfordExportFilter(PolicyStep):
    """Export side: valley-free filtering on the internal tag.

    Toward customers everything is exported.  Toward peers and
    providers, only routes tagged as customer-learned (or originated
    locally, i.e. carrying no relationship tag of ours) may pass.
    """

    def __init__(self, local_asn: int, session_relationship: Relationship):
        self._local_asn = int(local_asn) & 0xFFFF
        #: Relationship of the *session* this filter exports over,
        #: from the local AS's point of view.
        self._session_relationship = session_relationship
        self._peer_tag = Community.of(self._local_asn, REL_PEER)
        self._provider_tag = Community.of(self._local_asn, REL_PROVIDER)

    def apply(self, attributes, context: PolicyContext):
        if self._session_relationship == Relationship.CUSTOMER:
            return attributes
        communities = attributes.communities
        if (
            self._peer_tag in communities
            or self._provider_tag in communities
        ):
            return None
        return attributes

    def describe(self) -> str:
        return f"gao-rexford-export(to-{self._session_relationship.value})"


class ScrubInternalTags(PolicyStep):
    """Remove the local AS's relationship tags on export (hygiene)."""

    def __init__(self, local_asn: int):
        self._local_asn = int(local_asn) & 0xFFFF
        self._tags = tuple(
            Community.of(self._local_asn, value)
            for value in (REL_CUSTOMER, REL_PEER, REL_PROVIDER)
        )

    def apply(self, attributes, context: PolicyContext):
        cleaned = attributes.communities.remove(*self._tags)
        if cleaned == attributes.communities:
            return attributes
        return attributes.with_communities(cleaned)

    def describe(self) -> str:
        return "scrub-internal-tags"
