"""Synthetic workloads standing in for the paper's measurement data.

The paper analyzes RouteViews / RIPE RIS archives; offline we cannot
download them, so this package builds an internet-like topology,
assigns each AS realistic community practices (geo-tagging transits,
egress cleaners, blind propagators), drives it with a day of beacon
cycles and background routing events, and archives the collector feeds
— producing update streams with the same *mechanics* the paper
measures.  See DESIGN.md §2 for the substitution argument.
"""

from repro.workloads.registry import AllocationRegistry, AllocationRecord
from repro.workloads.topology_gen import (
    ASRole,
    ASSpec,
    AdjacencySpec,
    Relationship,
    TopologySpec,
    generate_topology,
    TopologyParams,
)
from repro.workloads.practices import (
    CommunityPractice,
    RelationshipImportPolicy,
    GaoRexfordExportFilter,
    ScrubInternalTags,
    REL_CUSTOMER,
    REL_PEER,
    REL_PROVIDER,
)
from repro.workloads.internet import (
    InternetModel,
    InternetConfig,
    SimulatedDay,
)
from repro.workloads.longitudinal import (
    GrowthModel,
    LongitudinalRunner,
    sampled_days,
)

__all__ = [
    "AllocationRegistry",
    "AllocationRecord",
    "ASRole",
    "ASSpec",
    "AdjacencySpec",
    "Relationship",
    "TopologySpec",
    "generate_topology",
    "TopologyParams",
    "CommunityPractice",
    "RelationshipImportPolicy",
    "GaoRexfordExportFilter",
    "ScrubInternalTags",
    "REL_CUSTOMER",
    "REL_PEER",
    "REL_PROVIDER",
    "InternetModel",
    "InternetConfig",
    "SimulatedDay",
    "GrowthModel",
    "LongitudinalRunner",
    "sampled_days",
]
