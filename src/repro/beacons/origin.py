"""Beacon origin agent: drives a router's announce/withdraw cycle."""

from __future__ import annotations

from typing import List

from repro.beacons.schedule import BeaconSchedule, PhaseKind
from repro.netbase.prefix import Prefix
from repro.simulator.router import Router


class BeaconOrigin:
    """Schedules one beacon prefix's announce/withdraw events.

    The agent mirrors RIPE's operational beacons: the prefix is
    announced at each announce-phase start and withdrawn at each
    withdraw-phase start.  Events are scheduled onto the network's
    queue at simulation-build time.
    """

    def __init__(
        self,
        router: Router,
        prefix: Prefix,
        *,
        schedule: "BeaconSchedule | None" = None,
        anchor_prefix: "Prefix | None" = None,
    ):
        self.router = router
        self.prefix = prefix
        self.schedule = schedule or BeaconSchedule()
        #: RIPE pairs each beacon with an *anchor* prefix that is
        #: announced continuously from the same origin: a control
        #: stream that separates beacon-induced dynamics from ambient
        #: path churn.  Announced once at scheduling time when set.
        self.anchor_prefix = anchor_prefix
        self._scheduled_events: List = []

    def schedule_day(
        self, day_start: float, *, until: "float | None" = None
    ) -> int:
        """Queue all announce/withdraw events for one UTC day.

        Returns the number of events scheduled.  Phases whose start is
        already in the past (relative to the simulation clock) are
        skipped so the agent can be installed mid-day; phases starting
        at or after ``until`` are skipped so a shortened measurement
        window (:attr:`InternetConfig.day_seconds`) truncates the
        beacon cycle too.
        """
        network = self.router._network
        now = network.queue.now
        count = 0
        if (
            self.anchor_prefix is not None
            and self.anchor_prefix not in self.router.originated_prefixes()
        ):
            self.router.originate(self.anchor_prefix)
        for phase in self.schedule.phases_for_day(day_start):
            if phase.start < now:
                continue
            if until is not None and phase.start >= until:
                continue
            if phase.kind == PhaseKind.ANNOUNCE:
                action = self._announce
            else:
                action = self._withdraw
            event = network.queue.schedule_at(phase.start, action)
            self._scheduled_events.append(event)
            count += 1
        return count

    def cancel(self) -> None:
        """Cancel all still-pending beacon events."""
        for event in self._scheduled_events:
            event.cancel()
        self._scheduled_events.clear()

    def _announce(self) -> None:
        self.router.originate(self.prefix)

    def _withdraw(self) -> None:
        self.router.withdraw_origination(self.prefix)

    def __repr__(self) -> str:
        return f"BeaconOrigin({self.prefix} @ {self.router.name})"
