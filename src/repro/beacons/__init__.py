"""RIPE-style routing beacons.

Beacons are prefixes announced and withdrawn on a fixed schedule so
that researchers get a controlled view of update propagation.  RIPE's
beacons announce every 4 hours starting 00:00 UTC and withdraw every
4 hours starting 02:00 UTC; one beacon prefix is associated with each
collector (§4 of the paper).
"""

from repro.beacons.schedule import (
    BeaconSchedule,
    BeaconPhase,
    PhaseKind,
    RIPE_ANNOUNCE_START,
    RIPE_WITHDRAW_START,
    RIPE_PERIOD,
    ripe_beacon_prefixes,
)
from repro.beacons.origin import BeaconOrigin

__all__ = [
    "BeaconSchedule",
    "BeaconPhase",
    "PhaseKind",
    "RIPE_ANNOUNCE_START",
    "RIPE_WITHDRAW_START",
    "RIPE_PERIOD",
    "ripe_beacon_prefixes",
    "BeaconOrigin",
]
