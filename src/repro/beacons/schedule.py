"""Beacon announce/withdraw schedule and phase labeling.

Besides generating the schedule for the simulator, this module labels
arbitrary timestamps with the phase they fall into — the §6 analysis
buckets every announcement into "within 15 minutes of an announcement
phase start", "within 15 minutes of a withdrawal phase start", or
"outside", and that labeling is what reveals the 60%+ of community
attributes that only ever appear during withdrawal-driven path
exploration.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, List

from repro.netbase.prefix import Prefix
from repro.netbase.timebase import SECONDS_PER_DAY, utc_day

#: RIPE beacon timing (seconds into the UTC day).
RIPE_ANNOUNCE_START = 0  # 00:00
RIPE_WITHDRAW_START = 2 * 3600  # 02:00
RIPE_PERIOD = 4 * 3600  # every 4 hours

#: §6 tolerance: events within 15 minutes of a phase start belong to it.
DEFAULT_PHASE_WINDOW = 15 * 60


class PhaseKind(enum.Enum):
    """Which half of the beacon cycle a phase belongs to."""

    ANNOUNCE = "announce"
    WITHDRAW = "withdraw"
    OUTSIDE = "outside"


@dataclass(frozen=True)
class BeaconPhase:
    """One scheduled phase: kind + start time."""

    kind: PhaseKind
    start: float

    def window(self, length: float = DEFAULT_PHASE_WINDOW) -> "tuple[float, float]":
        """The [start, start+length) interval the phase owns."""
        return (self.start, self.start + length)


class BeaconSchedule:
    """The RIPE beacon schedule over arbitrary time ranges."""

    def __init__(
        self,
        *,
        announce_start: int = RIPE_ANNOUNCE_START,
        withdraw_start: int = RIPE_WITHDRAW_START,
        period: int = RIPE_PERIOD,
        phase_window: float = DEFAULT_PHASE_WINDOW,
    ):
        if not 0 <= announce_start < period:
            raise ValueError("announce_start must fall within one period")
        if not 0 <= withdraw_start < period:
            raise ValueError("withdraw_start must fall within one period")
        if announce_start == withdraw_start:
            raise ValueError("announce and withdraw phases must differ")
        self.announce_start = announce_start
        self.withdraw_start = withdraw_start
        self.period = period
        self.phase_window = phase_window

    # ------------------------------------------------------------------
    # schedule generation
    # ------------------------------------------------------------------
    def phases_for_day(self, day_start: float) -> "List[BeaconPhase]":
        """All phases of the UTC day starting at *day_start*."""
        phases: List[BeaconPhase] = []
        cycles = SECONDS_PER_DAY // self.period
        for index in range(cycles):
            base = day_start + index * self.period
            phases.append(
                BeaconPhase(PhaseKind.ANNOUNCE, base + self.announce_start)
            )
            phases.append(
                BeaconPhase(PhaseKind.WITHDRAW, base + self.withdraw_start)
            )
        phases.sort(key=lambda phase: phase.start)
        return phases

    def events_for_day(self, day_start: float) -> Iterator["BeaconPhase"]:
        """Alias emphasizing that each phase is one origin-side event."""
        return iter(self.phases_for_day(day_start))

    # ------------------------------------------------------------------
    # labeling
    # ------------------------------------------------------------------
    def classify(self, timestamp: float) -> PhaseKind:
        """Label *timestamp* with the phase window it falls into."""
        day_start = utc_day(timestamp)
        offset = timestamp - day_start
        in_cycle = offset % self.period
        if (
            self.announce_start
            <= in_cycle
            < self.announce_start + self.phase_window
        ):
            return PhaseKind.ANNOUNCE
        if (
            self.withdraw_start
            <= in_cycle
            < self.withdraw_start + self.phase_window
        ):
            return PhaseKind.WITHDRAW
        return PhaseKind.OUTSIDE

    def phase_index(self, timestamp: float) -> int:
        """Which 4-hour cycle of the day *timestamp* falls into."""
        day_start = utc_day(timestamp)
        return int((timestamp - day_start) // self.period)


def ripe_beacon_prefixes(count: int = 15) -> "list[Prefix]":
    """Synthetic stand-ins for the RIPE beacon prefixes.

    The real beacons live in 84.205.64.0/19 (one /24 per collector,
    84.205.64.0/24 for rrc00 onward); we reuse that numbering so the
    examples read like the paper.
    """
    if not 1 <= count <= 32:
        raise ValueError("RIPE beacon block holds at most 32 /24s")
    return [Prefix(f"84.205.{64 + index}.0/24") for index in range(count)]
