"""TABLE_DUMP_V2 RIB snapshots (RFC 6396 §4.3).

Besides update archives, collectors publish periodic RIB snapshots
(``bview``/``rib`` files).  The paper works from update files, but a
complete collector substrate should produce both — and the analysis
layer uses snapshots to seed classifier state so that the first
announcement of a day compares against the RIB instead of being
"first on stream" (RouteViews users do exactly this).

Implemented subtypes:

* ``PEER_INDEX_TABLE`` (1) — collector id + peer table;
* ``RIB_IPV4_UNICAST`` (2) and ``RIB_IPV6_UNICAST`` (4) — one record
  per prefix with (peer index, originated time, attributes) entries.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Dict, Iterator, List, Tuple

import ipaddress

from repro.bgp.attributes import PathAttributes
from repro.bgp.wire import (
    _decode_attributes,
    _encode_attributes,
    _encode_mp_reach,
)
from repro.mrt.records import MRTError, MRTType, pack_address, unpack_address
from repro.netbase.prefix import Prefix

PEER_INDEX_TABLE = 1
RIB_IPV4_UNICAST = 2
RIB_IPV6_UNICAST = 4


class RibEntry:
    """One (peer, attributes) entry for a prefix in a snapshot."""

    __slots__ = ("peer_index", "originated_at", "attributes")

    def __init__(
        self,
        peer_index: int,
        originated_at: float,
        attributes: PathAttributes,
    ):
        self.peer_index = int(peer_index)
        self.originated_at = float(originated_at)
        self.attributes = attributes

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RibEntry):
            return NotImplemented
        return (
            self.peer_index == other.peer_index
            and int(self.originated_at) == int(other.originated_at)
            and self.attributes == other.attributes
        )

    def __repr__(self) -> str:
        return (
            f"RibEntry(peer={self.peer_index},"
            f" attrs={self.attributes!r})"
        )


class RibSnapshot:
    """A complete TABLE_DUMP_V2 snapshot in memory."""

    def __init__(
        self,
        collector_id: str,
        peers: "List[Tuple[int, str]]",
        *,
        snapshot_time: float = 0.0,
    ):
        self.collector_id = collector_id
        #: (peer ASN, peer address) in index order.
        self.peers = list(peers)
        self.snapshot_time = float(snapshot_time)
        self._tables: Dict[Prefix, List[RibEntry]] = {}

    def add_entry(
        self,
        prefix: Prefix,
        peer_index: int,
        attributes: PathAttributes,
        *,
        originated_at: float = 0.0,
    ) -> None:
        """Record one route in the snapshot."""
        if not 0 <= peer_index < len(self.peers):
            raise MRTError(f"peer index out of range: {peer_index}")
        self._tables.setdefault(prefix, []).append(
            RibEntry(peer_index, originated_at, attributes)
        )

    def entries(self, prefix: Prefix) -> "List[RibEntry]":
        """All entries for *prefix* (empty when absent)."""
        return list(self._tables.get(prefix, ()))

    def prefixes(self) -> "List[Prefix]":
        """All prefixes, sorted."""
        return sorted(self._tables)

    def route_count(self) -> int:
        """Total number of (prefix, peer) routes."""
        return sum(len(entries) for entries in self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def write(self, stream: BinaryIO) -> int:
        """Serialize as TABLE_DUMP_V2 records; returns record count."""
        written = 0
        _write_record(
            stream,
            self.snapshot_time,
            PEER_INDEX_TABLE,
            self._encode_peer_index(),
        )
        written += 1
        sequence = 0
        for prefix in self.prefixes():
            subtype = (
                RIB_IPV4_UNICAST if prefix.version == 4 else RIB_IPV6_UNICAST
            )
            _write_record(
                stream,
                self.snapshot_time,
                subtype,
                self._encode_rib_record(sequence, prefix),
            )
            sequence += 1
            written += 1
        return written

    def to_bytes(self) -> bytes:
        """Serialize to bytes."""
        buffer = io.BytesIO()
        self.write(buffer)
        return buffer.getvalue()

    def _encode_peer_index(self) -> bytes:
        collector_bytes = self.collector_id.encode("ascii")[:4].ljust(
            4, b"\x00"
        )
        out = bytearray(collector_bytes)
        out += struct.pack("!H", 0)  # view name length
        out += struct.pack("!H", len(self.peers))
        for peer_asn, peer_address in self.peers:
            afi, packed = pack_address(peer_address)
            peer_type = 0x02 | (0x01 if afi == 2 else 0x00)
            out.append(peer_type)
            out += bytes(4)  # peer BGP id (not modeled)
            out += packed
            out += struct.pack("!I", peer_asn)
        return bytes(out)

    def _encode_rib_record(self, sequence: int, prefix: Prefix) -> bytes:
        out = bytearray(struct.pack("!I", sequence))
        out += prefix.to_nlri()
        entries = self._tables[prefix]
        out += struct.pack("!H", len(entries))
        for entry in entries:
            attributes = _encode_attributes(entry.attributes)
            next_hop = entry.attributes.next_hop
            if (
                next_hop is not None
                and ipaddress.ip_address(next_hop).version == 6
            ):
                # TABLE_DUMP_V2 convention: IPv6 next hops travel in an
                # MP_REACH_NLRI attribute with an empty NLRI field.
                attributes += _encode_mp_reach((), entry.attributes)
            out += struct.pack(
                "!HIH",
                entry.peer_index,
                int(entry.originated_at),
                len(attributes),
            )
            out += attributes
        return bytes(out)

    # ------------------------------------------------------------------
    # parsing
    # ------------------------------------------------------------------
    @classmethod
    def read(cls, stream: BinaryIO) -> "RibSnapshot":
        """Parse a snapshot from TABLE_DUMP_V2 records."""
        snapshot: "RibSnapshot | None" = None
        while True:
            header = stream.read(12)
            if not header:
                break
            if len(header) < 12:
                raise MRTError("truncated TABLE_DUMP_V2 header")
            timestamp, mrt_type, subtype, length = struct.unpack(
                "!IHHI", header
            )
            body = stream.read(length)
            if len(body) < length:
                raise MRTError("truncated TABLE_DUMP_V2 body")
            if mrt_type != MRTType.TABLE_DUMP_V2:
                continue  # interleaved foreign records are skipped
            if subtype == PEER_INDEX_TABLE:
                snapshot = cls._decode_peer_index(body)
                snapshot.snapshot_time = float(timestamp)
            elif subtype in (RIB_IPV4_UNICAST, RIB_IPV6_UNICAST):
                if snapshot is None:
                    raise MRTError("RIB record before PEER_INDEX_TABLE")
                version = 4 if subtype == RIB_IPV4_UNICAST else 6
                snapshot._decode_rib_record(body, version)
        if snapshot is None:
            raise MRTError("no PEER_INDEX_TABLE in stream")
        return snapshot

    @classmethod
    def _decode_peer_index(cls, body: bytes) -> "RibSnapshot":
        collector_id = body[:4].rstrip(b"\x00").decode("ascii")
        view_length = struct.unpack("!H", body[4:6])[0]
        offset = 6 + view_length
        peer_count = struct.unpack("!H", body[offset : offset + 2])[0]
        offset += 2
        peers: List[Tuple[int, str]] = []
        for _ in range(peer_count):
            peer_type = body[offset]
            offset += 1 + 4  # type + BGP id
            if peer_type & 0x01:
                address = unpack_address(2, body[offset : offset + 16])
                offset += 16
            else:
                address = unpack_address(1, body[offset : offset + 4])
                offset += 4
            asn = struct.unpack("!I", body[offset : offset + 4])[0]
            offset += 4
            peers.append((asn, address))
        return cls("", peers).replace_collector(collector_id)

    def replace_collector(self, collector_id: str) -> "RibSnapshot":
        """Set the collector id (builder helper)."""
        self.collector_id = collector_id
        return self

    def _decode_rib_record(self, body: bytes, version: int) -> None:
        offset = 4  # skip sequence
        prefix, consumed = Prefix.from_nlri(body[offset:], version)
        offset += consumed
        entry_count = struct.unpack("!H", body[offset : offset + 2])[0]
        offset += 2
        for _ in range(entry_count):
            peer_index, originated, attr_length = struct.unpack(
                "!HIH", body[offset : offset + 8]
            )
            offset += 8
            attr_bytes = body[offset : offset + attr_length]
            offset += attr_length
            fields, reach_v6, _unreach, mp_next_hop = _decode_attributes(
                attr_bytes
            )
            if mp_next_hop is not None and fields.get("next_hop") is None:
                fields["next_hop"] = mp_next_hop
            self.add_entry(
                prefix,
                peer_index,
                PathAttributes(**fields),
                originated_at=float(originated),
            )


def _write_record(
    stream: BinaryIO, timestamp: float, subtype: int, body: bytes
) -> None:
    stream.write(
        struct.pack(
            "!IHHI",
            int(timestamp),
            MRTType.TABLE_DUMP_V2,
            subtype,
            len(body),
        )
    )
    stream.write(body)


def snapshot_from_collector(collector, *, at: float = 0.0) -> RibSnapshot:
    """Reconstruct a RIB snapshot from a collector's update archive.

    Replays the archived messages up to time *at* (default: all) and
    keeps the latest surviving announcement per (session, prefix) —
    exactly what the collector's RIB would contain.
    """
    from repro.bgp.message import UpdateMessage

    peers: List[Tuple[int, str]] = []
    peer_index: Dict[Tuple[int, str], int] = {}
    state: Dict[Tuple[int, Prefix], Tuple[float, PathAttributes]] = {}
    for record in collector.records:
        if at and record.timestamp > at:
            break
        if not isinstance(record.message, UpdateMessage):
            continue
        key = (int(record.peer_asn), record.peer_address)
        if key not in peer_index:
            peer_index[key] = len(peers)
            peers.append(key)
        index = peer_index[key]
        for prefix in record.message.withdrawn:
            state.pop((index, prefix), None)
        if record.message.announced:
            attributes = record.message.attributes
            for prefix in record.message.announced:
                state[(index, prefix)] = (record.timestamp, attributes)
    snapshot = RibSnapshot(
        collector.name, peers, snapshot_time=at
    )
    for (index, prefix), (timestamp, attributes) in sorted(
        state.items(), key=lambda item: (item[0][1], item[0][0])
    ):
        snapshot.add_entry(
            prefix, index, attributes, originated_at=timestamp
        )
    return snapshot
