"""MRT archive writer.

Produces byte-exact RFC 6396 records so the synthetic collector feeds
look like real RouteViews / RIS update archives.  The writer supports
both the microsecond-resolution ``BGP4MP_ET`` records used by modern
collectors and the legacy whole-second ``BGP4MP`` records, because the
paper's cleaning step (§4) must disambiguate same-second messages from
the latter and we want that code path exercised end to end.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterable

from repro.bgp.message import BGPMessage
from repro.bgp.wire import encode_message
from repro.mrt.records import (
    Bgp4mpMessage,
    Bgp4mpSubtype,
    MRTHeader,
    MRTType,
    pack_address,
)


class MRTWriter:
    """Stream MRT records to a binary file object.

    >>> buffer = io.BytesIO()
    >>> writer = MRTWriter(buffer)                      # doctest: +SKIP
    >>> writer.write_bgp4mp(record)                     # doctest: +SKIP
    """

    def __init__(self, stream: BinaryIO, *, extended_timestamps: bool = True):
        self._stream = stream
        self._extended = bool(extended_timestamps)
        self._count = 0

    @property
    def record_count(self) -> int:
        """Number of records written so far."""
        return self._count

    def write_bgp4mp(self, record: Bgp4mpMessage) -> None:
        """Write one BGP4MP(_ET) MESSAGE_AS4 record."""
        if record.message is None:
            raise ValueError("cannot archive a record without a message")
        body = self._encode_envelope(record) + encode_message(record.message)
        if self._extended:
            microseconds = int(round((record.timestamp % 1) * 1_000_000))
            # Guard against float rounding pushing us to a full second.
            microseconds = min(microseconds, 999_999)
            header = MRTHeader(
                int(record.timestamp),
                MRTType.BGP4MP_ET,
                Bgp4mpSubtype.MESSAGE_AS4,
                len(body) + 4,
                microseconds,
            )
            self._stream.write(
                struct.pack(
                    "!IHHI",
                    int(record.timestamp),
                    header.mrt_type,
                    header.subtype,
                    header.length,
                )
            )
            self._stream.write(struct.pack("!I", microseconds))
        else:
            header = MRTHeader(
                int(record.timestamp),
                MRTType.BGP4MP,
                Bgp4mpSubtype.MESSAGE_AS4,
                len(body),
            )
            self._stream.write(
                struct.pack(
                    "!IHHI",
                    int(record.timestamp),
                    header.mrt_type,
                    header.subtype,
                    header.length,
                )
            )
        self._stream.write(body)
        self._count += 1

    def write_all(self, records: Iterable[Bgp4mpMessage]) -> int:
        """Write every record from an iterable; return the count."""
        written = 0
        for record in records:
            self.write_bgp4mp(record)
            written += 1
        return written

    @staticmethod
    def _encode_envelope(record: Bgp4mpMessage) -> bytes:
        peer_afi, peer_packed = pack_address(record.peer_address)
        local_afi, local_packed = pack_address(record.local_address)
        if peer_afi != local_afi:
            raise ValueError(
                "peer and local addresses must share an address family"
            )
        return (
            struct.pack(
                "!IIHH",
                int(record.peer_asn),
                int(record.local_asn),
                0,  # interface index: not meaningful for collectors
                peer_afi,
            )
            + peer_packed
            + local_packed
        )


def dump_records(records: Iterable[Bgp4mpMessage], **kwargs) -> bytes:
    """Serialize records to bytes in one call (convenience for tests)."""
    buffer = io.BytesIO()
    writer = MRTWriter(buffer, **kwargs)
    writer.write_all(records)
    return buffer.getvalue()
