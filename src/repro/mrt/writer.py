"""MRT archive writer.

Produces byte-exact RFC 6396 records so the synthetic collector feeds
look like real RouteViews / RIS update archives.  The writer supports
both the microsecond-resolution ``BGP4MP_ET`` records used by modern
collectors and the legacy whole-second ``BGP4MP`` records, because the
paper's cleaning step (§4) must disambiguate same-second messages from
the latter and we want that code path exercised end to end.
"""

from __future__ import annotations

import io
import struct
from typing import BinaryIO, Iterable

from repro.bgp.message import BGPMessage
from repro.bgp.wire import encode_message
from repro.mrt.records import (
    Bgp4mpMessage,
    Bgp4mpSubtype,
    MRTType,
    pack_address,
)


class MRTWriter:
    """Stream MRT records to a binary file object.

    >>> buffer = io.BytesIO()
    >>> writer = MRTWriter(buffer)                      # doctest: +SKIP
    >>> writer.write_bgp4mp(record)                     # doctest: +SKIP
    """

    #: Encoded-message cache bound; collector feeds are duplicate-heavy
    #: (nn announcements, beacon re-announcements, post-reset table
    #: transfers), so value-identical messages recur constantly.
    _MESSAGE_CACHE_LIMIT = 8192

    def __init__(self, stream: BinaryIO, *, extended_timestamps: bool = True):
        self._stream = stream
        self._extended = bool(extended_timestamps)
        self._count = 0
        # Streaming spill writers encode one record per simulated
        # delivery, so the per-record constants are cached: the
        # session envelope (address packing is the expensive part) per
        # peer, and the BGP wire bytes per value-identical message.
        self._envelopes: dict = {}
        self._message_bytes: dict = {}

    @property
    def record_count(self) -> int:
        """Number of records written so far."""
        return self._count

    def write_bgp4mp(self, record: Bgp4mpMessage) -> None:
        """Write one BGP4MP(_ET) MESSAGE_AS4 record."""
        if record.message is None:
            raise ValueError("cannot archive a record without a message")
        self.write_message(
            record.timestamp,
            int(record.peer_asn),
            int(record.local_asn),
            record.peer_address,
            record.local_address,
            record.message,
        )

    def write_message(
        self,
        timestamp: float,
        peer_asn: int,
        local_asn: int,
        peer_address: str,
        local_address: str,
        message: BGPMessage,
    ) -> None:
        """Record-object-free fast path for streaming spill writers.

        Byte-identical to :meth:`write_bgp4mp`; skips the
        :class:`Bgp4mpMessage` construction the per-delivery hot loop
        would otherwise pay.
        """
        envelope_key = (peer_asn, local_asn, peer_address, local_address)
        envelope = self._envelopes.get(envelope_key)
        if envelope is None:
            envelope = self._encode_envelope_fields(
                peer_asn, local_asn, peer_address, local_address
            )
            self._envelopes[envelope_key] = envelope
        wire = self._message_bytes.get(message)
        if wire is None:
            if len(self._message_bytes) >= self._MESSAGE_CACHE_LIMIT:
                self._message_bytes.clear()
            wire = encode_message(message)
            self._message_bytes[message] = wire
        body_length = len(envelope) + len(wire)
        if self._extended:
            microseconds = int(round((timestamp % 1) * 1_000_000))
            # Guard against float rounding pushing us to a full second.
            microseconds = min(microseconds, 999_999)
            self._stream.write(
                struct.pack(
                    "!IHHII",
                    int(timestamp),
                    MRTType.BGP4MP_ET,
                    Bgp4mpSubtype.MESSAGE_AS4,
                    body_length + 4,
                    microseconds,
                )
                + envelope
                + wire
            )
        else:
            self._stream.write(
                struct.pack(
                    "!IHHI",
                    int(timestamp),
                    MRTType.BGP4MP,
                    Bgp4mpSubtype.MESSAGE_AS4,
                    body_length,
                )
                + envelope
                + wire
            )
        self._count += 1

    def write_all(self, records: Iterable[Bgp4mpMessage]) -> int:
        """Write every record from an iterable; return the count."""
        written = 0
        for record in records:
            self.write_bgp4mp(record)
            written += 1
        return written

    @staticmethod
    def _encode_envelope_fields(
        peer_asn: int,
        local_asn: int,
        peer_address: str,
        local_address: str,
    ) -> bytes:
        peer_afi, peer_packed = pack_address(peer_address)
        local_afi, local_packed = pack_address(local_address)
        if peer_afi != local_afi:
            raise ValueError(
                "peer and local addresses must share an address family"
            )
        return (
            struct.pack(
                "!IIHH",
                int(peer_asn),
                int(local_asn),
                0,  # interface index: not meaningful for collectors
                peer_afi,
            )
            + peer_packed
            + local_packed
        )


def dump_records(records: Iterable[Bgp4mpMessage], **kwargs) -> bytes:
    """Serialize records to bytes in one call (convenience for tests)."""
    buffer = io.BytesIO()
    writer = MRTWriter(buffer, **kwargs)
    writer.write_all(records)
    return buffer.getvalue()
