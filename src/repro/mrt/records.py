"""MRT record structures (RFC 6396).

We implement the two record families the reproduction needs:

* ``BGP4MP`` / ``BGP4MP_ET`` with the ``MESSAGE_AS4`` and
  ``MESSAGE_AS4_ADDPATH``-free subtypes — one archived BGP message with
  peer/local ASN + address envelope and (for the ``_ET`` variant)
  microsecond timestamps.  Collector projects record update files in
  exactly this shape; some collectors only store whole seconds, which
  the paper's cleaning step must repair — our writer can emulate both.
* ``TABLE_DUMP_V2`` ``PEER_INDEX_TABLE`` — enough to tag dumps with the
  collector identity.
"""

from __future__ import annotations

import enum
import ipaddress
import struct
from typing import Optional

from repro.bgp.message import BGPMessage
from repro.netbase.asn import ASN
from repro.netbase.memo import bounded_store, memo_counters


class MRTError(ValueError):
    """An MRT record is malformed or uses an unsupported subtype."""


class MRTType(enum.IntEnum):
    """MRT record type codes (subset)."""

    TABLE_DUMP_V2 = 13
    BGP4MP = 16
    BGP4MP_ET = 17


class Bgp4mpSubtype(enum.IntEnum):
    """BGP4MP subtypes (subset)."""

    STATE_CHANGE = 0
    MESSAGE = 1
    MESSAGE_AS4 = 4
    STATE_CHANGE_AS4 = 5


class TableDumpV2Subtype(enum.IntEnum):
    """TABLE_DUMP_V2 subtypes (subset)."""

    PEER_INDEX_TABLE = 1


_AFI_IPV4 = 1
_AFI_IPV6 = 2

#: Precompiled header structs (the reader unpacks one per record).
HEADER_STRUCT = struct.Struct("!IHHI")
MICROSECONDS_STRUCT = struct.Struct("!I")

#: Packed-address -> text memo.  Collector archives carry the same
#: handful of session addresses on every record; formatting them
#: through :mod:`ipaddress` once per distinct value instead of once per
#: record is a large win on the decode hot path.  Bounded: cleared
#: wholesale when full.
_ADDRESS_MEMO: dict = {}
_ADDRESS_MEMO_LIMIT = 8192
_address_memo_enabled = True
_ADDRESS_STATS = memo_counters("mrt.address")


def set_address_memo(enabled: bool) -> bool:
    """Enable/disable (and clear) the packed-address memo.

    Returns the previous setting (benchmark verify mode toggles this).
    """
    global _address_memo_enabled
    previous = _address_memo_enabled
    _address_memo_enabled = bool(enabled)
    _ADDRESS_MEMO.clear()
    return previous


def address_memo_size() -> int:
    """Current number of memoized addresses (for bound tests)."""
    return len(_ADDRESS_MEMO)


class MRTHeader:
    """The common MRT record header."""

    __slots__ = ("timestamp", "mrt_type", "subtype", "length", "microseconds")

    def __init__(
        self,
        timestamp: float,
        mrt_type: int,
        subtype: int,
        length: int,
        microseconds: int = 0,
    ):
        self.timestamp = float(timestamp)
        self.mrt_type = MRTType(mrt_type)
        self.subtype = subtype
        self.length = length
        self.microseconds = microseconds

    @property
    def full_timestamp(self) -> float:
        """Seconds including the extended-timestamp microseconds."""
        return int(self.timestamp) + self.microseconds / 1_000_000

    def __repr__(self) -> str:
        return (
            f"MRTHeader(ts={self.timestamp}, type={self.mrt_type.name},"
            f" subtype={self.subtype}, length={self.length})"
        )


class Bgp4mpMessage:
    """A decoded BGP4MP(_ET) MESSAGE(_AS4) record.

    Carries the archived BGP message plus the session envelope that the
    analysis pipeline keys streams on: (peer ASN, peer address) is the
    paper's notion of a *BGP session* at a collector.
    """

    __slots__ = (
        "timestamp",
        "peer_asn",
        "local_asn",
        "peer_address",
        "local_address",
        "message",
    )

    def __init__(
        self,
        timestamp: float,
        peer_asn: int,
        local_asn: int,
        peer_address: str,
        local_address: str,
        message: Optional[BGPMessage],
    ):
        self.timestamp = float(timestamp)
        self.peer_asn = ASN(peer_asn)
        self.local_asn = ASN(local_asn)
        self.peer_address = peer_address
        self.local_address = local_address
        self.message = message

    def __repr__(self) -> str:
        return (
            f"Bgp4mpMessage(ts={self.timestamp}, peer_asn={int(self.peer_asn)},"
            f" peer={self.peer_address}, message={self.message!r})"
        )


class PeerIndexTable:
    """A TABLE_DUMP_V2 PEER_INDEX_TABLE record (collector identity)."""

    __slots__ = ("collector_id", "view_name", "peers")

    def __init__(
        self,
        collector_id: str,
        view_name: str = "",
        peers: "tuple[tuple[int, str], ...]" = (),
    ):
        self.collector_id = collector_id
        self.view_name = view_name
        self.peers = tuple(peers)

    def __repr__(self) -> str:
        return (
            f"PeerIndexTable(collector='{self.collector_id}',"
            f" peers={len(self.peers)})"
        )


def pack_address(address: str) -> "tuple[int, bytes]":
    """Return (AFI, packed bytes) for a text IP address."""
    parsed = ipaddress.ip_address(address)
    afi = _AFI_IPV4 if parsed.version == 4 else _AFI_IPV6
    return afi, parsed.packed


def unpack_address(afi: int, data: bytes) -> str:
    """Decode a packed address for the given AFI."""
    packed = bytes(data)
    if _address_memo_enabled:
        cached = _ADDRESS_MEMO.get((afi, packed))
        if cached is not None:
            _ADDRESS_STATS.hits += 1
            return cached
    if afi == _AFI_IPV4:
        if len(packed) != 4:
            raise MRTError(f"bad IPv4 address length: {len(packed)}")
        text = str(ipaddress.IPv4Address(packed))
    elif afi == _AFI_IPV6:
        if len(packed) != 16:
            raise MRTError(f"bad IPv6 address length: {len(packed)}")
        text = str(ipaddress.IPv6Address(packed))
    else:
        raise MRTError(f"unsupported AFI: {afi}")
    if _address_memo_enabled:
        bounded_store(
            _ADDRESS_MEMO, (afi, packed), text, _ADDRESS_MEMO_LIMIT,
            _ADDRESS_STATS,
        )
    return text


def encode_header(header: MRTHeader) -> bytes:
    """Serialize the common header (12 or 16 bytes for _ET)."""
    base = HEADER_STRUCT.pack(
        int(header.timestamp),
        header.mrt_type,
        header.subtype,
        header.length,
    )
    if header.mrt_type == MRTType.BGP4MP_ET:
        return base + MICROSECONDS_STRUCT.pack(header.microseconds)
    return base


def decode_header(data: bytes) -> "tuple[MRTHeader, int]":
    """Parse the common header; return (header, header_size)."""
    if len(data) < 12:
        raise MRTError("truncated MRT header")
    timestamp, mrt_type, subtype, length = HEADER_STRUCT.unpack(data[:12])
    try:
        kind = MRTType(mrt_type)
    except ValueError as exc:
        raise MRTError(f"unsupported MRT type: {mrt_type}") from exc
    header = MRTHeader(timestamp, kind, subtype, length)
    size = 12
    if kind == MRTType.BGP4MP_ET:
        if len(data) < 16:
            raise MRTError("truncated BGP4MP_ET header")
        header.microseconds = MICROSECONDS_STRUCT.unpack(data[12:16])[0]
        # The microsecond field is part of the record body per RFC 6396,
        # so `length` includes it; account for that at the call site.
        size = 16
    return header, size
