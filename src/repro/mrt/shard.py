"""Record-boundary index pass and shard planning for MRT archives.

One on-disk archive is decoded by one core unless somebody splits it,
and MRT records are self-framing, so the split is almost free: a scan
that only ever touches the 12-byte record header plus the first few
envelope bytes yields every record's byte extent and its BGP session
— without materializing a single message body.

:func:`plan_shards` turns that index into N shards partitioned **by
session** (peer ASN + peer address): every record of a session lands
wholly in one shard, in file order.  The paper's §5 classification is
per-(session, prefix) stream state, and streams never cross sessions,
so per-shard classification followed by a counts merge is provably
identical to the serial pass — the property `bench_analysis.py
--verify` and the shard test suite pin bit-for-bit.

The index pass is strict on purpose: any structural damage it cannot
attribute to a session (truncated header or body, an envelope too
short to carry an address) raises :class:`ShardIndexError`, and the
caller falls back to the plain serial decode — which handles damage
exactly as it always has.  Records whose *message* bytes are damaged
index fine (the scan never parses the message) and are counted as
error records by whichever shard decodes them, so reader stats still
sum to the serial totals.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import BinaryIO, List, Optional, Sequence, Tuple

from repro.mrt.records import HEADER_STRUCT, Bgp4mpSubtype, MRTType

_HEADER_SIZE = 12
_CHUNK_SIZE = 1 << 20  # 1 MiB scan granularity

_BGP4MP = int(MRTType.BGP4MP)
_BGP4MP_ET = int(MRTType.BGP4MP_ET)
_MESSAGE = int(Bgp4mpSubtype.MESSAGE)
_MESSAGE_AS4 = int(Bgp4mpSubtype.MESSAGE_AS4)

#: The index-pass envelope memo is per call (archives carry a handful
#: of sessions but repeat the envelope on every record); the cap only
#: guards against adversarial archives synthesizing endless sessions.
_SESSION_MEMO_LIMIT = 65536


class ShardIndexError(RuntimeError):
    """The index pass met damage it cannot attribute to a session.

    Deliberately *not* an :class:`~repro.mrt.records.MRTError`: this is
    a planning failure, and the contract is "fall back to serial
    decode", never "drop the record" — the serial reader then applies
    its own tolerant/strict damage policy byte-for-byte as usual.
    """


@dataclass(frozen=True)
class ArchiveIndex:
    """Every record's byte extent plus its session identity.

    ``entries`` is one ``(offset, length, session)`` triple per record
    in file order: *offset* points at the MRT header, *length* covers
    header + body, and *session* is a dense integer id in session
    first-appearance order — or ``None`` for records that carry no
    session (unmodeled MRT types, non-MESSAGE BGP4MP subtypes).
    """

    path: str
    size: int
    entries: "Tuple[Tuple[int, int, Optional[int]], ...]"
    session_count: int


@dataclass(frozen=True)
class ShardSpec:
    """One shard's slice of the archive: coalesced byte ranges."""

    index: int
    #: ``(start, end)`` byte ranges, ascending and non-overlapping.
    ranges: "Tuple[Tuple[int, int], ...]"
    records: int
    sessions: int


@dataclass(frozen=True)
class ShardPlan:
    """A session-partitioned decode plan for one archive."""

    path: str
    shard_count: int
    size: int
    record_count: int
    session_count: int
    #: session id -> owning shard index (dense, first-appearance ids).
    session_assignment: "Tuple[int, ...]"
    shards: "Tuple[ShardSpec, ...]"


def index_archive(path: str) -> ArchiveIndex:
    """Walk record headers; return every record's extent and session.

    Touches at most the header plus ~32 envelope bytes per record and
    steps over bodies arithmetically (the file size bounds every
    record up front), so the scan is I/O-bound.  Raises
    :class:`ShardIndexError` on any structure the scan cannot index.
    """
    entries: "List[Tuple[int, int, Optional[int]]]" = []
    sessions: dict = {}
    session_memo: dict = {}
    with open(path, "rb") as handle:
        size = os.fstat(handle.fileno()).st_size
        buffer = b""
        base = 0  # file offset of buffer[0]
        offset = 0

        def view(start: int, count: int):
            """Buffered bytes [start, start+count); None past EOF."""
            nonlocal buffer, base
            if start + count > size:
                return None
            if start < base or start + count > base + len(buffer):
                handle.seek(start)
                buffer = handle.read(max(_CHUNK_SIZE, count))
                base = start
                if len(buffer) < count:
                    return None
            local = start - base
            return buffer[local : local + count]

        while offset < size:
            header = view(offset, _HEADER_SIZE)
            if header is None:
                raise ShardIndexError(
                    f"truncated MRT header at byte {offset}"
                )
            _ts, mrt_type, subtype, length = HEADER_STRUCT.unpack(header)
            end = offset + _HEADER_SIZE + length
            if end > size:
                raise ShardIndexError(
                    f"truncated MRT record body at byte {offset}"
                )
            session: "Optional[int]" = None
            if mrt_type == _BGP4MP or mrt_type == _BGP4MP_ET:
                if subtype == _MESSAGE or subtype == _MESSAGE_AS4:
                    session = _session_of(
                        view, offset + _HEADER_SIZE, length,
                        mrt_type == _BGP4MP_ET, subtype == _MESSAGE_AS4,
                        sessions, session_memo,
                    )
            entries.append((offset, _HEADER_SIZE + length, session))
            offset = end
    return ArchiveIndex(
        path=path,
        size=size,
        entries=tuple(entries),
        session_count=len(sessions),
    )


def _session_of(
    view, body_start: int, body_length: int, extended: bool, as4: bool,
    sessions: dict, memo: dict,
) -> int:
    """Resolve one MESSAGE(-AS4) record's dense session id.

    The identity is the decoded ``(peer ASN, AFI, peer address bytes)``
    triple — *not* the raw envelope bytes — so the same session carried
    as both MESSAGE and MESSAGE_AS4 records collapses to one id,
    exactly as the reader's :class:`SessionKey` would.
    """
    envelope_start = body_start
    envelope_length = body_length
    if extended:
        if body_length <= 4:
            raise ShardIndexError("BGP4MP_ET record too short to index")
        envelope_start += 4
        envelope_length -= 4
    # peer ASN field + AFI position depend on the subtype; the peer
    # address follows the 8-byte (or 12-byte) fixed envelope prefix.
    addr_offset = 12 if as4 else 8
    if envelope_length < addr_offset:
        raise ShardIndexError("BGP4MP envelope too short to index")
    prefix = view(envelope_start, addr_offset)
    if prefix is None:
        raise ShardIndexError("BGP4MP envelope too short to index")
    if as4:
        afi = (prefix[10] << 8) | prefix[11]
    else:
        afi = (prefix[6] << 8) | prefix[7]
    addr_size = 4 if afi == 1 else 16
    if envelope_length < addr_offset + addr_size:
        raise ShardIndexError("BGP4MP peer address truncated")
    address = view(envelope_start + addr_offset, addr_size)
    if address is None:
        raise ShardIndexError("BGP4MP peer address truncated")
    memo_key = (as4, prefix, address)
    session = memo.get(memo_key)
    if session is not None:
        return session
    if as4:
        peer_asn = int.from_bytes(prefix[:4], "big")
    else:
        peer_asn = (prefix[0] << 8) | prefix[1]
    identity = (peer_asn, afi, address)
    session = sessions.get(identity)
    if session is None:
        session = len(sessions)
        sessions[identity] = session
    if len(memo) >= _SESSION_MEMO_LIMIT:
        memo.clear()
    memo[memo_key] = session
    return session


def plan_shards(
    path: str,
    shard_count: int,
    *,
    index: "Optional[ArchiveIndex]" = None,
) -> ShardPlan:
    """Partition an archive into *shard_count* session-complete shards.

    Sessions are assigned greedily, heaviest first, to the least
    loaded shard (ties broken by shard index), so record counts
    balance without ever splitting a session.  Sessionless records
    stick to the shard of the record before them — the assignment is
    arbitrary for correctness (they only contribute skip counts, which
    sum), and stickiness keeps the byte ranges coalesced.  The whole
    plan is a pure function of the archive bytes and *shard_count*.
    """
    if shard_count < 1:
        raise ValueError(f"shard_count must be >= 1, got {shard_count!r}")
    if index is None:
        index = index_archive(path)
    session_records = [0] * index.session_count
    for _offset, _length, session in index.entries:
        if session is not None:
            session_records[session] += 1
    order = sorted(
        range(index.session_count),
        key=lambda session: (-session_records[session], session),
    )
    loads = [0] * shard_count
    assignment = [0] * index.session_count
    for session in order:
        shard = min(range(shard_count), key=lambda i: (loads[i], i))
        assignment[session] = shard
        loads[shard] += session_records[session]
    ranges: "List[List[List[int]]]" = [[] for _ in range(shard_count)]
    records = [0] * shard_count
    current = 0
    for offset, length, session in index.entries:
        if session is not None:
            current = assignment[session]
        shard_ranges = ranges[current]
        end = offset + length
        if shard_ranges and shard_ranges[-1][1] == offset:
            shard_ranges[-1][1] = end
        else:
            shard_ranges.append([offset, end])
        records[current] += 1
    shard_sessions = [0] * shard_count
    for session in range(index.session_count):
        shard_sessions[assignment[session]] += 1
    return ShardPlan(
        path=path,
        shard_count=shard_count,
        size=index.size,
        record_count=len(index.entries),
        session_count=index.session_count,
        session_assignment=tuple(assignment),
        shards=tuple(
            ShardSpec(
                index=shard,
                ranges=tuple(
                    (start, end) for start, end in ranges[shard]
                ),
                records=records[shard],
                sessions=shard_sessions[shard],
            )
            for shard in range(shard_count)
        ),
    )


class RangeStream:
    """A read-only stream over selected byte ranges of one file.

    Presents a shard's coalesced ``(start, end)`` ranges as a single
    contiguous stream, which is exactly what :class:`MRTReader` wants:
    the ranges cover whole records, so the concatenation is itself a
    well-formed MRT archive containing just this shard's records, in
    file order.
    """

    def __init__(
        self, handle: BinaryIO, ranges: "Sequence[Tuple[int, int]]"
    ):
        self._handle = handle
        self._ranges = list(ranges)
        self._next = 0
        self._remaining = 0

    def read(self, count: int = -1) -> bytes:
        parts = []
        want = count
        while want != 0:
            if self._remaining <= 0:
                if self._next >= len(self._ranges):
                    break
                start, end = self._ranges[self._next]
                self._next += 1
                self._handle.seek(start)
                self._remaining = end - start
                continue
            take = self._remaining if want < 0 else min(want, self._remaining)
            chunk = self._handle.read(take)
            if not chunk:
                break
            self._remaining -= len(chunk)
            if want > 0:
                want -= len(chunk)
            parts.append(chunk)
        return b"".join(parts)
