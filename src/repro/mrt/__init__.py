"""MRT archive format (RFC 6396) — the format of RouteViews / RIS dumps.

The reproduction both *writes* MRT (the synthetic internet model dumps
its collector feeds exactly the way RouteViews archives update files)
and *reads* MRT (the analysis pipeline consumes archives, so it would
work unmodified on real ``updates.*.bz2`` files if they were supplied).
"""

from repro.mrt.records import (
    MRTHeader,
    MRTType,
    Bgp4mpSubtype,
    Bgp4mpMessage,
    PeerIndexTable,
    MRTError,
)
from repro.mrt.reader import MRTReader, read_updates
from repro.mrt.table_dump import (
    RibEntry,
    RibSnapshot,
    snapshot_from_collector,
)
from repro.mrt.writer import MRTWriter

__all__ = [
    "MRTHeader",
    "MRTType",
    "Bgp4mpSubtype",
    "Bgp4mpMessage",
    "PeerIndexTable",
    "MRTError",
    "MRTReader",
    "read_updates",
    "MRTWriter",
    "RibEntry",
    "RibSnapshot",
    "snapshot_from_collector",
]
