"""MRT archive reader.

Streams :class:`~repro.mrt.records.Bgp4mpMessage` objects out of a
binary archive.  Unsupported record types are skipped (real archives
interleave state changes and table dumps with updates), malformed
records raise :class:`~repro.mrt.records.MRTError` unless the reader is
constructed with ``tolerant=True`` — real collector archives do contain
occasional damage, and the paper's pipeline drops rather than crashes.

The reader is the front of the analysis hot path (a month of
RouteViews archives is hundreds of millions of records), so it reads
the stream in large chunks and decodes records through zero-copy
:class:`memoryview` slices of its buffer instead of issuing one
``stream.read`` per field.  Records of unmodeled types are *skipped*
without ever materializing their bodies, and the per-session MRT
envelope (ASNs + packed addresses) is memoized on its raw bytes — an
archive carries only a handful of distinct sessions but repeats the
envelope on every record.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator, Optional

from repro.bgp.errors import WireFormatError
from repro.bgp.message import UpdateMessage
from repro.bgp.wire import decode_message_from
from repro.mrt.records import (
    HEADER_STRUCT,
    MICROSECONDS_STRUCT,
    Bgp4mpMessage,
    Bgp4mpSubtype,
    MRTError,
    MRTType,
    unpack_address,
)
from repro.netbase.asn import ASN
from repro.netbase.memo import bounded_store, memo_counters

_HEADER_SIZE = 12
_CHUNK_SIZE = 1 << 16  # 64 KiB read granularity

_AS4_ENVELOPE = struct.Struct("!IIHH")
_AS2_ENVELOPE = struct.Struct("!HHHH")

_BGP4MP = int(MRTType.BGP4MP)
_BGP4MP_ET = int(MRTType.BGP4MP_ET)
_MESSAGE = int(Bgp4mpSubtype.MESSAGE)
_MESSAGE_AS4 = int(Bgp4mpSubtype.MESSAGE_AS4)

#: Per-reader envelope memo bound (a damaged archive could otherwise
#: grow it without limit; genuine archives have few sessions).
_ENVELOPE_MEMO_LIMIT = 4096

#: The envelope memo is per-reader, but its effectiveness counters are
#: process-wide like every other named memo's.
_ENVELOPE_STATS = memo_counters("mrt.envelope")


class MRTReader:
    """Iterate BGP4MP messages from an MRT byte stream.

    >>> for record in MRTReader(open(path, 'rb')):    # doctest: +SKIP
    ...     process(record)
    """

    def __init__(self, stream: BinaryIO, *, tolerant: bool = False):
        self._stream = stream
        self._tolerant = bool(tolerant)
        self._skipped = 0
        self._errors = 0
        self._buffer = b""
        self._pos = 0
        self._stream_eof = False
        # Raw envelope bytes -> (peer_asn, local_asn, peer, local, size).
        self._envelopes: dict = {}

    @property
    def skipped_records(self) -> int:
        """Records skipped because their type is not modeled."""
        return self._skipped

    @property
    def error_records(self) -> int:
        """Records dropped due to damage (tolerant mode only)."""
        return self._errors

    def __iter__(self) -> Iterator[Bgp4mpMessage]:
        while True:
            record = self._read_one()
            if record is _EOF:
                return
            if record is not None:
                yield record

    # ------------------------------------------------------------------
    # buffered input
    # ------------------------------------------------------------------
    def _fill(self, needed: int) -> bool:
        """Ensure *needed* bytes are buffered past the read position."""
        while len(self._buffer) - self._pos < needed:
            if self._stream_eof:
                return False
            chunk = self._stream.read(max(_CHUNK_SIZE, needed))
            if not chunk:
                self._stream_eof = True
                return False
            if self._pos:
                self._buffer = self._buffer[self._pos :] + chunk
                self._pos = 0
            else:
                self._buffer += chunk
        return True

    def _skip(self, count: int) -> bool:
        """Advance past *count* bytes without materializing them."""
        available = len(self._buffer) - self._pos
        if available >= count:
            self._pos += count
            return True
        count -= available
        self._buffer = b""
        self._pos = 0
        while count > 0:
            chunk = self._stream.read(min(count, _CHUNK_SIZE))
            if not chunk:
                self._stream_eof = True
                return False
            count -= len(chunk)
        return True

    # ------------------------------------------------------------------
    # record decode
    # ------------------------------------------------------------------
    def _read_one(self):
        if not self._fill(_HEADER_SIZE):
            if len(self._buffer) == self._pos:
                return _EOF
            self._pos = len(self._buffer)
            return self._damaged("truncated MRT header at end of stream")
        pos = self._pos
        timestamp, mrt_type, subtype, length = HEADER_STRUCT.unpack_from(
            self._buffer, pos
        )
        self._pos = pos + _HEADER_SIZE
        if mrt_type != _BGP4MP and mrt_type != _BGP4MP_ET:
            # Fast skip: the body of an unmodeled record is never read
            # into a Python object, just stepped over in the buffer.
            if not self._skip(length):
                return self._damaged("truncated MRT record body")
            self._skipped += 1
            return None
        if not self._fill(length):
            self._pos = len(self._buffer)
            return self._damaged("truncated MRT record body")
        start = self._pos
        self._pos = start + length
        body = memoryview(self._buffer)[start : self._pos]
        if mrt_type == _BGP4MP_ET:
            if length <= 4:
                # length == 4 is the microseconds field alone: an empty
                # message body is damage, not a decodable record.
                return self._damaged("BGP4MP_ET record too short")
            microseconds = MICROSECONDS_STRUCT.unpack_from(body, 0)[0]
            return self._decode_bgp4mp(
                timestamp + microseconds / 1_000_000, subtype, body[4:]
            )
        return self._decode_bgp4mp(float(timestamp), subtype, body)

    def _decode_bgp4mp(
        self, timestamp: float, subtype: int, body
    ) -> Optional[Bgp4mpMessage]:
        if subtype != _MESSAGE and subtype != _MESSAGE_AS4:
            self._skipped += 1
            return None
        try:
            if subtype == _MESSAGE_AS4:
                if len(body) < 12:
                    raise MRTError("truncated BGP4MP_AS4 envelope")
                afi = _U16_AT(body, 10)
                offset = 12
            else:
                if len(body) < 8:
                    raise MRTError("truncated BGP4MP envelope")
                afi = _U16_AT(body, 6)
                offset = 8
            envelope_end = offset + (8 if afi == 1 else 32)
            envelope_key = bytes(body[:envelope_end])
            envelope = self._envelopes.get(envelope_key)
            if envelope is None:
                envelope = bounded_store(
                    self._envelopes,
                    envelope_key,
                    self._decode_envelope(envelope_key, subtype, afi, offset),
                    _ENVELOPE_MEMO_LIMIT,
                    _ENVELOPE_STATS,
                )
            else:
                _ENVELOPE_STATS.hits += 1
            peer_asn, local_asn, peer_address, local_address = envelope
            message, _consumed = decode_message_from(body[envelope_end:])
        except (MRTError, WireFormatError, ValueError) as exc:
            return self._damaged(str(exc))
        return Bgp4mpMessage(
            timestamp, peer_asn, local_asn, peer_address, local_address,
            message,
        )

    @staticmethod
    def _decode_envelope(raw: bytes, subtype: int, afi: int, offset: int):
        if subtype == _MESSAGE_AS4:
            peer_asn, local_asn, _iface, _afi = _AS4_ENVELOPE.unpack_from(
                raw, 0
            )
        else:
            peer_asn, local_asn, _iface, _afi = _AS2_ENVELOPE.unpack_from(
                raw, 0
            )
        addr_size = 4 if afi == 1 else 16
        peer_address = unpack_address(afi, raw[offset : offset + addr_size])
        local_address = unpack_address(
            afi, raw[offset + addr_size : offset + 2 * addr_size]
        )
        # Pre-validated ASN objects: Bgp4mpMessage's own ASN() calls
        # then hit the identity fast path on every record.
        return ASN(peer_asn), ASN(local_asn), peer_address, local_address

    def _damaged(self, reason: str):
        if self._tolerant:
            self._errors += 1
            return _EOF if "end of stream" in reason else None
        raise MRTError(reason)


def _U16_AT(buffer, index: int) -> int:
    return (buffer[index] << 8) | buffer[index + 1]


class _EOFType:
    """Sentinel distinguishing end-of-stream from skipped records."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<EOF>"


_EOF = _EOFType()


def read_updates(stream: BinaryIO, **kwargs) -> Iterator[Bgp4mpMessage]:
    """Yield only records that carry an UPDATE message."""
    for record in MRTReader(stream, **kwargs):
        if isinstance(record.message, UpdateMessage):
            yield record
