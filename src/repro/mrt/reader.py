"""MRT archive reader.

Streams :class:`~repro.mrt.records.Bgp4mpMessage` objects out of a
binary archive.  Unsupported record types are skipped (real archives
interleave state changes and table dumps with updates), malformed
records raise :class:`~repro.mrt.records.MRTError` unless the reader is
constructed with ``tolerant=True`` — real collector archives do contain
occasional damage, and the paper's pipeline drops rather than crashes.
"""

from __future__ import annotations

import struct
from typing import BinaryIO, Iterator, Optional

from repro.bgp.errors import WireFormatError
from repro.bgp.message import UpdateMessage
from repro.bgp.wire import decode_message_from
from repro.mrt.records import (
    Bgp4mpMessage,
    Bgp4mpSubtype,
    MRTError,
    MRTType,
    unpack_address,
)

_HEADER_SIZE = 12


class MRTReader:
    """Iterate BGP4MP messages from an MRT byte stream.

    >>> for record in MRTReader(open(path, 'rb')):    # doctest: +SKIP
    ...     process(record)
    """

    def __init__(self, stream: BinaryIO, *, tolerant: bool = False):
        self._stream = stream
        self._tolerant = bool(tolerant)
        self._skipped = 0
        self._errors = 0

    @property
    def skipped_records(self) -> int:
        """Records skipped because their type is not modeled."""
        return self._skipped

    @property
    def error_records(self) -> int:
        """Records dropped due to damage (tolerant mode only)."""
        return self._errors

    def __iter__(self) -> Iterator[Bgp4mpMessage]:
        while True:
            record = self._read_one()
            if record is _EOF:
                return
            if record is not None:
                yield record

    def _read_one(self):
        header_bytes = self._stream.read(_HEADER_SIZE)
        if not header_bytes:
            return _EOF
        if len(header_bytes) < _HEADER_SIZE:
            return self._damaged("truncated MRT header at end of stream")
        timestamp, mrt_type, subtype, length = struct.unpack(
            "!IHHI", header_bytes
        )
        body = self._stream.read(length)
        if len(body) < length:
            return self._damaged("truncated MRT record body")
        if mrt_type == MRTType.BGP4MP_ET:
            if length < 4:
                return self._damaged("BGP4MP_ET record too short")
            microseconds = struct.unpack("!I", body[:4])[0]
            body = body[4:]
            full_timestamp = timestamp + microseconds / 1_000_000
            return self._decode_bgp4mp(full_timestamp, subtype, body)
        if mrt_type == MRTType.BGP4MP:
            return self._decode_bgp4mp(float(timestamp), subtype, body)
        self._skipped += 1
        return None

    def _decode_bgp4mp(
        self, timestamp: float, subtype: int, body: bytes
    ) -> Optional[Bgp4mpMessage]:
        if subtype not in (
            Bgp4mpSubtype.MESSAGE,
            Bgp4mpSubtype.MESSAGE_AS4,
        ):
            self._skipped += 1
            return None
        try:
            if subtype == Bgp4mpSubtype.MESSAGE_AS4:
                if len(body) < 12:
                    raise MRTError("truncated BGP4MP_AS4 envelope")
                peer_asn, local_asn, _iface, afi = struct.unpack(
                    "!IIHH", body[:12]
                )
                offset = 12
            else:
                if len(body) < 8:
                    raise MRTError("truncated BGP4MP envelope")
                peer_asn, local_asn, _iface, afi = struct.unpack(
                    "!HHHH", body[:8]
                )
                offset = 8
            addr_size = 4 if afi == 1 else 16
            peer_address = unpack_address(
                afi, body[offset : offset + addr_size]
            )
            local_address = unpack_address(
                afi, body[offset + addr_size : offset + 2 * addr_size]
            )
            offset += 2 * addr_size
            message, _consumed = decode_message_from(body[offset:])
        except (MRTError, WireFormatError, ValueError) as exc:
            return self._damaged(str(exc))
        return Bgp4mpMessage(
            timestamp, peer_asn, local_asn, peer_address, local_address,
            message,
        )

    def _damaged(self, reason: str):
        if self._tolerant:
            self._errors += 1
            return _EOF if "end of stream" in reason else None
        raise MRTError(reason)


class _EOFType:
    """Sentinel distinguishing end-of-stream from skipped records."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "<EOF>"


_EOF = _EOFType()


def read_updates(stream: BinaryIO, **kwargs) -> Iterator[Bgp4mpMessage]:
    """Yield only records that carry an UPDATE message."""
    for record in MRTReader(stream, **kwargs):
        if isinstance(record.message, UpdateMessage):
            yield record
