"""Low-level network primitives shared by every other subsystem.

This package deliberately has no dependencies on the rest of :mod:`repro`
so that the BGP model, the MRT codec, the simulator, and the analysis
pipeline can all build on one set of prefix/ASN/time types.
"""

from repro.netbase.asn import (
    ASN,
    AS_TRANS,
    is_private_asn,
    is_reserved_asn,
    parse_asn,
)
from repro.netbase.errors import (
    NetBaseError,
    PrefixError,
    ASNError,
    ClockError,
)
from repro.netbase.prefix import Prefix
from repro.netbase.timebase import (
    SimClock,
    Timestamp,
    utc_day,
    parse_utc,
    format_utc,
    SECONDS_PER_DAY,
)

__all__ = [
    "ASN",
    "AS_TRANS",
    "is_private_asn",
    "is_reserved_asn",
    "parse_asn",
    "NetBaseError",
    "PrefixError",
    "ASNError",
    "ClockError",
    "Prefix",
    "SimClock",
    "Timestamp",
    "utc_day",
    "parse_utc",
    "format_utc",
    "SECONDS_PER_DAY",
]
