"""Shared bounded-memo primitive for the decode hot path.

Every read-path cache — attribute blocks, AS paths, community sets,
NLRI encodings, packed addresses, MRT envelopes, cleaning-pipeline
scans — uses one eviction policy: when the memo reaches its bound it
is cleared wholesale and refills from the live working set.  Real
archives have small working sets, so a full clear costs one cold
decode per distinct value and keeps the policy O(1) with no
bookkeeping on the hit path (an LRU would charge every hit).  Keeping
the policy here, in one place, means a future change (say, to a real
LRU) cannot silently diverge between caches.

Every bounded store also carries a *named* :class:`MemoStats` record
(hits / misses / evictions), so cache effectiveness is a measured
number instead of something inferred from throughput deltas.
Counting is a single integer increment per event — the hit path pays
one ``stats.hits += 1`` next to the dict lookup it already does — and
the counters never influence decoded output, so the fast-vs-naive
determinism verifies are unaffected.  :func:`memo_stats` snapshots
every store; :func:`reset_memo_stats` zeroes them (determinism
harnesses and per-run metric reports both want a clean slate).
"""

from __future__ import annotations

from typing import Dict


class MemoStats:
    """Hit/miss/eviction counters for one named bounded memo."""

    __slots__ = ("name", "hits", "misses", "evictions")

    def __init__(self, name: str):
        self.name = name
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def reset(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def as_dict(self) -> "Dict[str, float]":
        """JSON-friendly snapshot, with the derived hit rate."""
        lookups = self.hits + self.misses
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": self.hits / lookups if lookups else 0.0,
        }

    def __repr__(self) -> str:
        return (
            f"MemoStats({self.name!r}, hits={self.hits},"
            f" misses={self.misses}, evictions={self.evictions})"
        )


#: Every named memo's stats, in registration order.
_STATS_REGISTRY: "Dict[str, MemoStats]" = {}


def memo_counters(name: str) -> MemoStats:
    """The (registered) stats record for the memo called *name*.

    Idempotent: modules create their record at import time with
    ``_STATS = memo_counters("wire.attr_block")`` and the same object
    is returned on any later call, so reporting code can look memos up
    by name without holding module references.
    """
    stats = _STATS_REGISTRY.get(name)
    if stats is None:
        stats = MemoStats(name)
        _STATS_REGISTRY[name] = stats
    return stats


def memo_stats() -> "Dict[str, Dict[str, float]]":
    """Snapshot of every registered memo: name -> counters dict."""
    return {
        name: stats.as_dict()
        for name, stats in sorted(_STATS_REGISTRY.items())
    }


def reset_memo_stats() -> None:
    """Zero every registered memo's counters (not the caches)."""
    for stats in _STATS_REGISTRY.values():
        stats.reset()


def bounded_store(
    cache: dict, key, value, limit: int, stats: "MemoStats | None" = None
):
    """Store ``key -> value``, clearing the whole memo at *limit*.

    Returns *value* so call sites can store-and-use in one expression.
    When *stats* is given, the store counts as one miss (a store only
    happens after a failed lookup) and a wholesale clear as one
    eviction — both on the cold path, where a counter increment is
    noise next to the decode the miss just paid for.
    """
    if len(cache) >= limit:
        cache.clear()
        if stats is not None:
            stats.evictions += 1
    if stats is not None:
        stats.misses += 1
    cache[key] = value
    return value
