"""Shared bounded-memo primitive for the decode hot path.

Every read-path cache — attribute blocks, AS paths, community sets,
NLRI encodings, packed addresses, MRT envelopes, cleaning-pipeline
scans — uses one eviction policy: when the memo reaches its bound it
is cleared wholesale and refills from the live working set.  Real
archives have small working sets, so a full clear costs one cold
decode per distinct value and keeps the policy O(1) with no
bookkeeping on the hit path (an LRU would charge every hit).  Keeping
the policy here, in one place, means a future change (say, to a real
LRU) cannot silently diverge between caches.
"""

from __future__ import annotations


def bounded_store(cache: dict, key, value, limit: int):
    """Store ``key -> value``, clearing the whole memo at *limit*.

    Returns *value* so call sites can store-and-use in one expression.
    """
    if len(cache) >= limit:
        cache.clear()
    cache[key] = value
    return value
