"""Exception hierarchy for :mod:`repro.netbase`.

Every package in :mod:`repro` derives its errors from a small, local
hierarchy so that callers can either catch narrowly (``PrefixError``) or
broadly (``NetBaseError``) without ever resorting to bare ``Exception``.
"""


class NetBaseError(Exception):
    """Base class for all errors raised by :mod:`repro.netbase`."""


class PrefixError(NetBaseError, ValueError):
    """An IP prefix string or component is malformed or out of range."""


class ASNError(NetBaseError, ValueError):
    """An AS number is malformed or out of the representable range."""


class ClockError(NetBaseError, RuntimeError):
    """The simulated clock was used incorrectly (e.g. moved backwards)."""
