"""Time handling for measurement data and the discrete-event simulator.

The paper's datasets are UTC-day slices (e.g. *d_mar20* = 2020-03-15)
and some collectors record at whole-second granularity, forcing the
cleaning pipeline to disambiguate same-second arrivals (§4).  We
therefore model timestamps as ``float`` seconds since the Unix epoch and
provide a :class:`SimClock` for the simulator that only ever moves
forward.
"""

from __future__ import annotations

import calendar
import datetime as _dt

from repro.netbase.errors import ClockError

#: Alias that documents intent: seconds since the Unix epoch, UTC.
Timestamp = float

SECONDS_PER_DAY = 86_400


def parse_utc(text: str) -> Timestamp:
    """Parse ``YYYY-MM-DD`` or ``YYYY-MM-DD HH:MM[:SS]`` as UTC seconds.

    >>> parse_utc("2020-03-15") == parse_utc("2020-03-15 00:00:00")
    True
    """
    formats = ("%Y-%m-%d %H:%M:%S", "%Y-%m-%d %H:%M", "%Y-%m-%d")
    for fmt in formats:
        try:
            parsed = _dt.datetime.strptime(text, fmt)
        except ValueError:
            continue
        return float(calendar.timegm(parsed.timetuple()))
    raise ValueError(f"unrecognized UTC time: {text!r}")


def format_utc(when: Timestamp, *, with_time: bool = True) -> str:
    """Render a timestamp as ``YYYY-MM-DD[ HH:MM:SS]`` in UTC."""
    parsed = _dt.datetime.fromtimestamp(when, tz=_dt.timezone.utc)
    if with_time:
        return parsed.strftime("%Y-%m-%d %H:%M:%S")
    return parsed.strftime("%Y-%m-%d")


def utc_day(when: Timestamp) -> Timestamp:
    """Return midnight UTC of the day containing *when*."""
    return float(int(when) - int(when) % SECONDS_PER_DAY)


def seconds_into_day(when: Timestamp) -> float:
    """Seconds elapsed since midnight UTC of the same day."""
    return when - utc_day(when)


class SimClock:
    """A monotonically advancing simulated clock.

    The simulator owns one clock; routers and collectors read it.  The
    clock refuses to move backwards, which turns event-queue ordering
    bugs into immediate, loud failures rather than silently reordered
    measurement data.
    """

    __slots__ = ("_now",)

    def __init__(self, start: Timestamp = 0.0):
        self._now = float(start)

    @property
    def now(self) -> Timestamp:
        """The current simulated time."""
        return self._now

    def advance_to(self, when: Timestamp) -> None:
        """Move the clock forward to *when* (same instant is allowed)."""
        if when < self._now:
            raise ClockError(
                f"clock moved backwards: {when} < {self._now}"
            )
        self._now = float(when)

    def advance_by(self, delta: float) -> None:
        """Move the clock forward by *delta* seconds."""
        if delta < 0:
            raise ClockError(f"negative clock delta: {delta}")
        self._now += delta

    def __repr__(self) -> str:
        return f"SimClock(now={self._now})"
