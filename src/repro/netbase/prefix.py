"""IP prefix type used throughout the reproduction.

We need a prefix representation that is

* immutable and hashable (prefixes key RIBs, streams and counters),
* cheap to compare and sort (billions of comparisons in the analysis),
* capable of both IPv4 and IPv6 (the paper's dataset includes both),
* convertible to and from the BGP/MRT wire encodings (NLRI format).

The standard library :mod:`ipaddress` module is correct but carries
overhead we do not want in the hot path, so :class:`Prefix` stores the
network address as a plain ``int`` plus ``(length, version)`` and
implements only the operations the reproduction needs.
"""

from __future__ import annotations

import ipaddress
from typing import Iterator

from repro.netbase.errors import PrefixError
from repro.netbase.memo import bounded_store, memo_counters

_V4_BITS = 32
_V6_BITS = 128

#: NLRI-decode interning memo: real archives repeat a small working set
#: of prefixes millions of times, so identical wire encodings resolve
#: to the *same* Prefix object (enabling identity fast paths in the
#: analysis layer) instead of re-parsing.  Bounded: cleared wholesale
#: when full, like the MRT writer's message cache.
_NLRI_MEMO: dict = {}
_NLRI_MEMO_LIMIT = 65536
_nlri_memo_enabled = True
_NLRI_STATS = memo_counters("prefix.nlri")


def set_nlri_memo(enabled: bool) -> bool:
    """Enable/disable (and clear) the NLRI interning memo.

    Returns the previous setting.  Disabling forces every decode down
    the naive parse path — the benchmark's verify mode uses this to
    prove the memo is a pure optimization.
    """
    global _nlri_memo_enabled
    previous = _nlri_memo_enabled
    _nlri_memo_enabled = bool(enabled)
    _NLRI_MEMO.clear()
    return previous


def nlri_memo_size() -> int:
    """Current number of interned NLRI encodings (for bound tests)."""
    return len(_NLRI_MEMO)


class Prefix:
    """An immutable IPv4/IPv6 prefix.

    >>> Prefix("84.205.64.0/24")
    Prefix('84.205.64.0/24')
    >>> Prefix("2001:db8::/32").version
    6
    >>> Prefix("10.0.0.0/8").contains(Prefix("10.1.0.0/16"))
    True
    """

    __slots__ = ("_network", "_length", "_version", "_hash")

    def __init__(self, text: "str | Prefix", *, strict: bool = True):
        if isinstance(text, Prefix):
            self._network = text._network
            self._length = text._length
            self._version = text._version
            return
        if not isinstance(text, str):
            raise PrefixError(f"prefix must be a string, got {type(text).__name__}")
        address_text, sep, length_text = text.partition("/")
        if not sep:
            raise PrefixError(f"missing prefix length: {text!r}")
        try:
            address = ipaddress.ip_address(address_text)
            length = int(length_text)
        except ValueError as exc:
            raise PrefixError(f"malformed prefix: {text!r}") from exc
        max_bits = _V4_BITS if address.version == 4 else _V6_BITS
        if not 0 <= length <= max_bits:
            raise PrefixError(f"prefix length out of range: {text!r}")
        network = int(address)
        mask = _mask(length, max_bits)
        if strict and network & ~mask & ((1 << max_bits) - 1):
            raise PrefixError(f"host bits set in prefix: {text!r}")
        self._network = network & mask
        self._length = length
        self._version = address.version

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_int(cls, network: int, length: int, version: int) -> "Prefix":
        """Build a prefix directly from its integer representation."""
        self = object.__new__(cls)
        max_bits = _V4_BITS if version == 4 else _V6_BITS
        if version not in (4, 6):
            raise PrefixError(f"bad IP version: {version}")
        if not 0 <= length <= max_bits:
            raise PrefixError(f"prefix length out of range: /{length}")
        if not 0 <= network < (1 << max_bits):
            raise PrefixError(f"network out of range for IPv{version}: {network}")
        mask = _mask(length, max_bits)
        if network & ~mask & ((1 << max_bits) - 1):
            raise PrefixError("host bits set in prefix integer")
        self._network = network
        self._length = length
        self._version = version
        return self

    @classmethod
    def from_nlri(cls, data: bytes, version: int = 4) -> "tuple[Prefix, int]":
        """Decode one BGP NLRI-encoded prefix from *data*.

        Returns ``(prefix, bytes_consumed)``.  NLRI encoding is a length
        octet followed by ``ceil(length / 8)`` network octets.
        """
        if not data:
            raise PrefixError("empty NLRI")
        length = data[0]
        max_bits = _V4_BITS if version == 4 else _V6_BITS
        if length > max_bits:
            raise PrefixError(f"NLRI length {length} too long for IPv{version}")
        octets = (length + 7) // 8
        if len(data) < 1 + octets:
            raise PrefixError("truncated NLRI")
        consumed = 1 + octets
        if _nlri_memo_enabled:
            key = (version, bytes(data[:consumed]))
            cached = _NLRI_MEMO.get(key)
            if cached is not None:
                _NLRI_STATS.hits += 1
                return cached
        network_bytes = (
            bytes(data[1:consumed]) + b"\x00" * (max_bits // 8 - octets)
        )
        network = int.from_bytes(network_bytes, "big")
        mask = _mask(length, max_bits)
        if network & ~mask & ((1 << max_bits) - 1):
            # Tolerate sloppy senders: mask off trailing garbage bits.
            network &= mask
        result = (cls.from_int(network, length, version), consumed)
        if _nlri_memo_enabled:
            bounded_store(
                _NLRI_MEMO, key, result, _NLRI_MEMO_LIMIT, _NLRI_STATS
            )
        return result

    # ------------------------------------------------------------------
    # accessors
    # ------------------------------------------------------------------
    @property
    def network(self) -> int:
        """The network address as an integer."""
        return self._network

    @property
    def length(self) -> int:
        """The prefix length in bits."""
        return self._length

    @property
    def version(self) -> int:
        """IP version, 4 or 6."""
        return self._version

    @property
    def max_bits(self) -> int:
        """The address width for this IP version (32 or 128)."""
        return _V4_BITS if self._version == 4 else _V6_BITS

    @property
    def network_address(self) -> str:
        """Dotted/colon text form of the network address."""
        if self._version == 4:
            return str(ipaddress.IPv4Address(self._network))
        return str(ipaddress.IPv6Address(self._network))

    # ------------------------------------------------------------------
    # predicates
    # ------------------------------------------------------------------
    def contains(self, other: "Prefix") -> bool:
        """True when *other* is equal to or more specific than *self*."""
        if self._version != other._version or other._length < self._length:
            return False
        shift = self.max_bits - self._length
        return (self._network >> shift) == (other._network >> shift)

    def overlaps(self, other: "Prefix") -> bool:
        """True when the two prefixes share any address."""
        return self.contains(other) or other.contains(self)

    def supernet(self, new_length: "int | None" = None) -> "Prefix":
        """Return the covering prefix with *new_length* (default −1 bit)."""
        if new_length is None:
            new_length = self._length - 1
        if not 0 <= new_length <= self._length:
            raise PrefixError(f"bad supernet length /{new_length} for {self}")
        mask = _mask(new_length, self.max_bits)
        return Prefix.from_int(self._network & mask, new_length, self._version)

    def subnets(self) -> "tuple[Prefix, Prefix]":
        """Split into the two next-longer prefixes."""
        if self._length >= self.max_bits:
            raise PrefixError(f"cannot subnet a host route: {self}")
        new_length = self._length + 1
        low = Prefix.from_int(self._network, new_length, self._version)
        high_bit = 1 << (self.max_bits - new_length)
        high = Prefix.from_int(self._network | high_bit, new_length, self._version)
        return low, high

    def hosts_count(self) -> int:
        """Number of addresses covered by the prefix."""
        return 1 << (self.max_bits - self._length)

    # ------------------------------------------------------------------
    # wire encoding
    # ------------------------------------------------------------------
    def to_nlri(self) -> bytes:
        """Encode in BGP NLRI format (length octet + packed network)."""
        octets = (self._length + 7) // 8
        packed = self._network.to_bytes(self.max_bits // 8, "big")[:octets]
        return bytes([self._length]) + packed

    def iter_host_bits(self) -> Iterator[int]:
        """Yield the network bits most-significant first (for tries)."""
        for position in range(self._length):
            yield (self._network >> (self.max_bits - 1 - position)) & 1

    # ------------------------------------------------------------------
    # dunder protocol
    # ------------------------------------------------------------------
    def _key(self) -> tuple:
        return (self._version, self._network, self._length)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self._key() == other._key()

    def __lt__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self._key() < other._key()

    def __le__(self, other: "Prefix") -> bool:
        if not isinstance(other, Prefix):
            return NotImplemented
        return self._key() <= other._key()

    def __hash__(self) -> int:
        # Prefixes key every RIB dict; cache the hash lazily (slot may
        # be unset because from_int() bypasses __init__).
        try:
            return self._hash
        except AttributeError:
            self._hash = hash(self._key())
            return self._hash

    def __repr__(self) -> str:
        return f"Prefix('{self}')"

    def __str__(self) -> str:
        return f"{self.network_address}/{self._length}"


def _mask(length: int, max_bits: int) -> int:
    """Return the network mask for *length* bits out of *max_bits*."""
    if length == 0:
        return 0
    return ((1 << length) - 1) << (max_bits - length)
