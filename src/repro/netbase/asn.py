"""Autonomous System Number handling.

BGP AS numbers are 16-bit in the original protocol and 32-bit since
RFC 6793.  The paper's cleaning step (§4) removes messages containing
ASNs that were unallocated at message time, which requires awareness of
the reserved and private-use ranges carved out by IANA:

* 0            — reserved (RFC 7607, may not appear in an AS path)
* 23456        — AS_TRANS (RFC 6793 placeholder)
* 64198–64495  — reserved by IANA
* 64496–64511  — documentation (RFC 5398)
* 64512–65534  — private use (RFC 6996)
* 65535        — reserved (RFC 7300)
* 65536–65551  — documentation (RFC 5398)
* 4200000000–4294967294 — private use (RFC 6996)
* 4294967295   — reserved (RFC 7300)

An :class:`ASN` is an ``int`` subclass: it is hashable, sortable and
arithmetically transparent, but knows how to render itself in *asplain*
and *asdot* notation and how to validate its range.
"""

from __future__ import annotations

from repro.netbase.errors import ASNError

ASN_MAX_16BIT = 0xFFFF
ASN_MAX_32BIT = 0xFFFFFFFF

#: RFC 6793 placeholder ASN used by old speakers for 4-byte AS paths.
AS_TRANS = 23456

_PRIVATE_RANGES = (
    (64512, 65534),
    (4200000000, 4294967294),
)

_RESERVED_RANGES = (
    (0, 0),
    (64198, 64495),
    (64496, 64511),
    (65535, 65535),
    (65536, 65551),
    (4294967295, 4294967295),
)


class ASN(int):
    """A validated autonomous system number.

    >>> ASN(65000)
    ASN(65000)
    >>> ASN("64512.1")          # asdot notation
    ASN(4227858433)
    >>> ASN(3356).is_16bit
    True
    """

    __slots__ = ()

    def __new__(cls, value: "int | str | ASN") -> "ASN":
        if type(value) is cls:
            return value  # already validated and immutable
        if isinstance(value, str):
            value = _parse_asn_string(value)
        number = int(value)
        if not 0 <= number <= ASN_MAX_32BIT:
            raise ASNError(f"ASN out of range: {number}")
        return super().__new__(cls, number)

    @property
    def is_16bit(self) -> bool:
        """True when the ASN fits in the original 2-byte field."""
        return self <= ASN_MAX_16BIT

    @property
    def is_private(self) -> bool:
        """True for RFC 6996 private-use ASNs."""
        return is_private_asn(self)

    @property
    def is_reserved(self) -> bool:
        """True for IANA-reserved or documentation ASNs."""
        return is_reserved_asn(self)

    @property
    def is_public(self) -> bool:
        """True when the ASN may legitimately appear in the global table."""
        return not (self.is_private or self.is_reserved or self == AS_TRANS)

    def to_asdot(self) -> str:
        """Render in RFC 5396 *asdot* notation (e.g. ``64512.1``)."""
        if self.is_16bit:
            return str(int(self))
        return f"{int(self) >> 16}.{int(self) & 0xFFFF}"

    def __repr__(self) -> str:
        return f"ASN({int(self)})"

    def __str__(self) -> str:
        return str(int(self))


def _parse_asn_string(text: str) -> int:
    """Parse *asplain*, *asdot* or ``AS``-prefixed notation to an int."""
    cleaned = text.strip()
    if cleaned.upper().startswith("AS"):
        cleaned = cleaned[2:]
    if not cleaned:
        raise ASNError(f"empty ASN string: {text!r}")
    if "." in cleaned:
        high_text, _, low_text = cleaned.partition(".")
        try:
            high, low = int(high_text), int(low_text)
        except ValueError as exc:
            raise ASNError(f"malformed asdot ASN: {text!r}") from exc
        if not (0 <= high <= ASN_MAX_16BIT and 0 <= low <= ASN_MAX_16BIT):
            raise ASNError(f"asdot component out of range: {text!r}")
        return (high << 16) | low
    try:
        return int(cleaned)
    except ValueError as exc:
        raise ASNError(f"malformed ASN: {text!r}") from exc


def parse_asn(text: "str | int") -> ASN:
    """Parse any accepted ASN notation into an :class:`ASN`."""
    return ASN(text)


def is_private_asn(number: int) -> bool:
    """Return True when *number* falls in an RFC 6996 private range."""
    return any(low <= number <= high for low, high in _PRIVATE_RANGES)


def is_reserved_asn(number: int) -> bool:
    """Return True when *number* is IANA-reserved or documentation-only."""
    return any(low <= number <= high for low, high in _RESERVED_RANGES)
