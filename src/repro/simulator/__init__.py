"""Discrete-event BGP network simulator.

The simulator plays the role of the paper's laboratory (real router
images wired into the Figure 1 topology) *and* of the Internet that
RouteViews/RIS observe.  Routers implement the full RFC 4271 pipeline —
Adj-RIB-In, import policy, decision process, Loc-RIB, export policy,
Adj-RIB-Out — with vendor-specific duplicate suppression from
:mod:`repro.vendors`, so the paper's update phenomena *emerge* from the
mechanics instead of being scripted.
"""

from repro.simulator.events import EventQueue, ScheduledEvent
from repro.simulator.link import Link
from repro.simulator.session import BGPSession, SessionKind
from repro.simulator.router import Router
from repro.simulator.collector import RouteCollector, CollectedMessage
from repro.simulator.damping import DampingConfig, RouteDamper
from repro.simulator.network import Network
from repro.simulator.experiments import (
    LabTopology,
    ExperimentResult,
    run_experiment,
    run_all_experiments,
    EXPERIMENTS,
)

__all__ = [
    "EventQueue",
    "ScheduledEvent",
    "Link",
    "BGPSession",
    "SessionKind",
    "Router",
    "RouteCollector",
    "CollectedMessage",
    "Network",
    "DampingConfig",
    "RouteDamper",
    "LabTopology",
    "ExperimentResult",
    "run_experiment",
    "run_all_experiments",
    "EXPERIMENTS",
]
