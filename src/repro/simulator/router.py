"""The simulated BGP router.

Implements the full RFC 4271 route-processing pipeline:

    session → Adj-RIB-In (post import policy) → decision process
            → Loc-RIB → per-peer export policy → Adj-RIB-Out → session

The paper's central mechanism lives in :meth:`Router._advertise`:
when the Loc-RIB entry for a prefix changes *in any way* (including
purely internal detail such as the next hop after an iBGP failover),
the router recomputes the egress attributes for every peer.  If the
egress attributes are identical to what was previously sent, the vendor
profile decides: Junos suppresses (Adj-RIB-Out comparison), Cisco and
BIRD emit an exact duplicate — the `nn` updates measured in §5-§6.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.bgp.attributes import PathAttributes
from repro.bgp.constants import OriginCode
from repro.bgp.message import BGPMessage, UpdateMessage
from repro.netbase.asn import ASN
from repro.netbase.prefix import Prefix
from repro.policy.actions import honor_no_export
from repro.policy.engine import PolicyContext, RoutingPolicy
from repro.rib.adj_rib import AdjacencyIndex, AdjRIBIn, AdjRIBOut
from repro.rib.decision import DecisionConfig, DecisionProcess
from repro.rib.loc_rib import LocRIB
from repro.rib.route import Route, RouteSource
from repro.simulator.session import BGPSession, SessionKind
from repro.vendors.profiles import CISCO_IOS, VendorProfile


class Router:
    """One BGP speaker inside one AS."""

    def __init__(
        self,
        network,
        name: str,
        asn: int,
        router_id: str,
        *,
        vendor: VendorProfile = CISCO_IOS,
        decision_config: "DecisionConfig | None" = None,
        transparent: bool = False,
    ):
        self._network = network
        self.name = name
        self.asn = ASN(asn)
        self.router_id = router_id
        self.vendor = vendor
        #: Transparent speakers (IXP route servers) do not prepend
        #: their own ASN on eBGP export — the collector-side ambiguity
        #: the paper's cleaning step repairs (§4).
        self.transparent = bool(transparent)
        self._decision = DecisionProcess(decision_config)
        self._sessions: List[BGPSession] = []
        self._session_by_id: Dict[int, BGPSession] = {}
        #: Cross-session candidate index shared by every Adj-RIB-In:
        #: reconsidering a prefix touches only that prefix's candidates
        #: instead of scanning one RIB per session.
        self._rib_index = AdjacencyIndex()
        self._adj_rib_in: Dict[int, AdjRIBIn] = {}
        self._adj_rib_out: Dict[int, AdjRIBOut] = {}
        self._policies: Dict[int, RoutingPolicy] = {}
        self._ingress_points: Dict[int, str] = {}
        #: Per-session constants, resolved once at attach time instead
        #: of through session.other() on every message.
        self._peer_ids: Dict[int, str] = {}
        self._peer_asns: Dict[int, ASN] = {}
        self._peer_addresses: Dict[int, str] = {}
        self._local_addresses: Dict[int, str] = {}
        self._loc_rib = LocRIB()
        self._local_routes: Dict[Prefix, Route] = {}
        self._mrai_pending: Dict[int, Set[Prefix]] = {}
        self._mrai_timer_armed: Set[int] = set()
        #: Counters for the analysis layer.
        self.sent_updates = 0
        self.sent_withdrawals = 0
        self.received_updates = 0

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------
    def attach_session(
        self,
        session: BGPSession,
        *,
        policy: "RoutingPolicy | None" = None,
        ingress_point: Optional[str] = None,
    ) -> None:
        """Register a session endpoint on this router."""
        self._sessions.append(session)
        key = session.session_id
        self._session_by_id[key] = session
        self._adj_rib_in[key] = AdjRIBIn(key, self._rib_index)
        self._adj_rib_out[key] = AdjRIBOut()
        self._policies[key] = policy or RoutingPolicy.permissive()
        if ingress_point is not None:
            self._ingress_points[key] = ingress_point
        self._mrai_pending[key] = set()
        peer = session.other(self)
        self._peer_ids[key] = getattr(peer, "router_id", peer.name)
        self._peer_asns[key] = ASN(peer.asn)
        self._peer_addresses[key] = session.peer_address(self)
        self._local_addresses[key] = session.local_address(self)

    def set_policy(self, session: BGPSession, policy: RoutingPolicy) -> None:
        """Replace the routing policy for *session*."""
        self._policies[session.session_id] = policy

    def policy_for(self, session: BGPSession) -> RoutingPolicy:
        """The routing policy applied on *session*."""
        return self._policies[session.session_id]

    @property
    def sessions(self) -> "list[BGPSession]":
        """All attached sessions."""
        return list(self._sessions)

    @property
    def loc_rib(self) -> LocRIB:
        """The router's selected best routes."""
        return self._loc_rib

    def adj_rib_in(self, session: BGPSession) -> AdjRIBIn:
        """Inbound RIB for *session*."""
        return self._adj_rib_in[session.session_id]

    def adj_rib_out(self, session: BGPSession) -> AdjRIBOut:
        """Outbound RIB for *session*."""
        return self._adj_rib_out[session.session_id]

    # ------------------------------------------------------------------
    # route origination
    # ------------------------------------------------------------------
    def originate(
        self,
        prefix: Prefix,
        *,
        med: Optional[int] = None,
        communities=None,
    ) -> None:
        """Originate *prefix* from this router (network statement)."""
        attributes = PathAttributes(
            origin=OriginCode.IGP,
            med=med,
            communities=communities,
            next_hop=self.router_id,
        )
        route = Route(
            prefix,
            attributes,
            source=RouteSource.LOCAL,
            peer_id=None,
            learned_at=self._network.queue.now,
        )
        self._local_routes[prefix] = route
        self._reconsider(prefix)

    def withdraw_origination(self, prefix: Prefix) -> None:
        """Stop originating *prefix* (beacon withdraw phase)."""
        if self._local_routes.pop(prefix, None) is not None:
            self._reconsider(prefix)

    def originated_prefixes(self) -> "list[Prefix]":
        """Prefixes this router currently originates."""
        return list(self._local_routes)

    # ------------------------------------------------------------------
    # message handling
    # ------------------------------------------------------------------
    def receive(self, session: BGPSession, message: BGPMessage) -> None:
        """Process one inbound message from *session*."""
        if not isinstance(message, UpdateMessage):
            return
        self._process_update(
            session, self._adj_rib_in[session.session_id], message
        )

    def receive_batch(
        self, session: BGPSession, messages: "list[BGPMessage]"
    ) -> None:
        """Process a coalesced burst of inbound messages from *session*.

        Each message is processed fully (import, decision, propagation)
        before the next, so the outcome is identical to receiving them
        as individual events in order — the batch only saves the
        per-message event-queue round trip.
        """
        rib_in = self._adj_rib_in[session.session_id]
        for message in messages:
            if isinstance(message, UpdateMessage):
                self._process_update(session, rib_in, message)

    def _process_update(
        self,
        session: BGPSession,
        rib_in: AdjRIBIn,
        message: UpdateMessage,
    ) -> None:
        """Run one UPDATE through import, decision and propagation."""
        self.received_updates += 1
        dirty: Set[Prefix] = set()
        for prefix in message.withdrawn:
            if rib_in.withdraw(prefix) is not None:
                dirty.add(prefix)
        if message.announced:
            assert message.attributes is not None
            for prefix in message.announced:
                changed = self._import_route(
                    session, rib_in, prefix, message.attributes
                )
                if changed:
                    dirty.add(prefix)
        if len(dirty) == 1:
            self._reconsider(dirty.pop())
        elif dirty:
            for prefix in sorted(dirty):
                self._reconsider(prefix)

    def _import_route(
        self,
        session: BGPSession,
        rib_in: AdjRIBIn,
        prefix: Prefix,
        attributes: PathAttributes,
    ) -> bool:
        """Run import processing; True when Adj-RIB-In changed."""
        key = session.session_id
        is_ebgp = session.is_ebgp
        if is_ebgp and attributes.as_path.contains(self.asn):
            # AS-path loop: RFC 4271 mandates rejection.  Treat like a
            # withdrawal when the peer previously advertised the prefix.
            return rib_in.withdraw(prefix) is not None
        import_chain = self._policies[key].import_chain
        if import_chain.steps:
            context = PolicyContext(
                local_asn=self.asn,
                peer_asn=self._peer_asns[key],
                prefix=prefix,
                ingress_point=self._ingress_points.get(key),
                is_ebgp=is_ebgp,
            )
            imported = import_chain.apply(attributes, context)
            if imported is None:
                return rib_in.withdraw(prefix) is not None
        else:
            # Permissive chain: identity transform, no context needed.
            imported = attributes
        if is_ebgp:
            # eBGP ingress: next hop becomes the peer's session address;
            # LOCAL_PREF is never accepted from an external neighbor.
            # (Usually already true on the wire — skip the copy then.)
            peer_address = self._peer_addresses[key]
            if (
                imported.next_hop != peer_address
                or imported.local_pref is not None
            ):
                imported = imported.replace(
                    next_hop=peer_address, local_pref=None
                )
        route = Route(
            prefix,
            imported,
            source=(RouteSource.EBGP if is_ebgp else RouteSource.IBGP),
            peer_id=self._peer_ids[key],
            peer_asn=self._peer_asns[key],
            peer_address=self._peer_addresses[key],
            igp_cost=self._igp_cost_via(session),
            learned_at=self._network.queue.now,
        )
        previous = rib_in.get(prefix)
        if previous is not None and previous == route:
            return False
        rib_in.install(route)
        return True

    def _igp_cost_via(self, session: BGPSession) -> int:
        """IGP distance to a next hop reached through *session*."""
        return self._network.igp_cost(self, session)

    # ------------------------------------------------------------------
    # decision + propagation
    # ------------------------------------------------------------------
    def _reconsider(self, prefix: Prefix) -> None:
        """Re-run the decision process for *prefix* and propagate."""
        candidates: List[Route] = []
        local = self._local_routes.get(prefix)
        if local is not None:
            candidates.append(local)
        session_by_id = self._session_by_id
        for key, route in self._rib_index.candidates(prefix):
            if session_by_id[key].established:
                candidates.append(route)
        best = self._decision.select(candidates)
        if best is None:
            if self._loc_rib.remove(prefix) is not None:
                self._propagate_withdrawal(prefix)
            return
        changed, _previous = self._loc_rib.update(best)
        if changed:
            self._propagate_route(prefix, best)

    def _propagate_route(self, prefix: Prefix, route: Route) -> None:
        """Advertise the (new) best route to every eligible peer."""
        for session in self._sessions:
            if not session.established:
                continue
            if not self._may_export(route, session):
                self._withdraw_from_peer(session, prefix)
                continue
            egress = self._export_attributes(route, session)
            if egress is None:
                self._withdraw_from_peer(session, prefix)
                continue
            self._advertise(session, prefix, egress)

    def _propagate_withdrawal(self, prefix: Prefix) -> None:
        """Withdraw *prefix* from every peer that had it."""
        for session in self._sessions:
            if not session.established:
                continue
            self._withdraw_from_peer(session, prefix)

    def _may_export(self, route: Route, session: BGPSession) -> bool:
        """Scoping rules that precede export policy."""
        # Never advertise back to the router the route came from.
        if route.peer_id is not None and route.peer_id == self._peer_ids[
            session.session_id
        ]:
            return False
        # Full-mesh iBGP: iBGP-learned routes stay put.
        if route.source == RouteSource.IBGP and not session.is_ebgp:
            return False
        if not honor_no_export(route.attributes, is_ebgp=session.is_ebgp):
            return False
        return True

    def _export_attributes(
        self, route: Route, session: BGPSession
    ) -> "PathAttributes | None":
        """Compute the attributes as they would appear on the wire."""
        key = session.session_id
        attributes = route.attributes
        if session.is_ebgp:
            changes = {
                "next_hop": self._local_addresses[key],
                "local_pref": None,
            }
            if not self.transparent:
                changes["as_path"] = attributes.as_path.prepend(self.asn)
            if (
                self.vendor.reset_med_on_ebgp_export
                and route.source != RouteSource.LOCAL
                and attributes.med is not None
            ):
                # MED is non-transitive: it crosses exactly one AS
                # border.  A locally-originated MED is sent to the
                # neighbor; a received MED is never re-exported.
                changes["med"] = None
            attributes = attributes.replace(**changes)
        else:
            # iBGP: preserve next hop (no next-hop-self by default) and
            # make LOCAL_PREF explicit for the internal peer.
            ibgp_changes = {}
            if attributes.local_pref is None:
                ibgp_changes["local_pref"] = 100
            if attributes.next_hop is None:
                ibgp_changes["next_hop"] = self.router_id
            if ibgp_changes:
                attributes = attributes.replace(**ibgp_changes)
        export_chain = self._policies[key].export_chain
        if not export_chain.steps:
            return attributes
        context = PolicyContext(
            local_asn=self.asn,
            peer_asn=self._peer_asns[key],
            prefix=route.prefix,
            is_ebgp=session.is_ebgp,
        )
        return export_chain.apply(attributes, context)

    def _advertise(
        self, session: BGPSession, prefix: Prefix, egress: PathAttributes
    ) -> None:
        """Send (or suppress) one advertisement, honoring MRAI."""
        rib_out = self._adj_rib_out[session.session_id]
        previous = rib_out.last_advertised(prefix)
        if previous is not None and previous == egress:
            if self.vendor.suppress_duplicate_advertisements:
                return
            # Duplicate advertisement: identical to the previous one.
            # RFC 4271 says SHOULD NOT; Cisco/BIRD send it anyway.
        if session.mrai_wait(self) > 0:
            self._stage_mrai(session, prefix)
            return
        rib_out.record_advertisement(prefix, egress)
        if session.send(self, UpdateMessage.announce(prefix, egress)):
            self.sent_updates += 1
            session.mark_advertisement(self)

    def _withdraw_from_peer(self, session: BGPSession, prefix: Prefix) -> None:
        rib_out = self._adj_rib_out[session.session_id]
        if not rib_out.record_withdrawal(prefix):
            return
        self._mrai_pending[session.session_id].discard(prefix)
        if session.send(self, UpdateMessage.withdraw(prefix)):
            self.sent_withdrawals += 1

    # ------------------------------------------------------------------
    # MRAI pacing
    # ------------------------------------------------------------------
    def _stage_mrai(self, session: BGPSession, prefix: Prefix) -> None:
        key = session.session_id
        self._mrai_pending[key].add(prefix)
        if key in self._mrai_timer_armed:
            return
        self._mrai_timer_armed.add(key)
        self._network.queue.schedule(
            session.mrai_wait(self), lambda: self._flush_mrai(session)
        )

    def _flush_mrai(self, session: BGPSession) -> None:
        key = session.session_id
        self._mrai_timer_armed.discard(key)
        pending = sorted(self._mrai_pending[key])
        self._mrai_pending[key].clear()
        if not session.established:
            return
        for prefix in pending:
            route = self._loc_rib.get(prefix)
            if route is None:
                self._withdraw_from_peer(session, prefix)
                continue
            if not self._may_export(route, session):
                self._withdraw_from_peer(session, prefix)
                continue
            egress = self._export_attributes(route, session)
            if egress is None:
                self._withdraw_from_peer(session, prefix)
                continue
            self._advertise(session, prefix, egress)

    def refresh_exports(self, session: BGPSession) -> int:
        """Re-evaluate all exports on *session* after a policy change.

        Models outbound soft reconfiguration / route refresh: only
        routes whose egress attributes actually differ from the
        Adj-RIB-Out entry are re-advertised, so an unchanged policy
        refresh is silent on the wire.  Returns the number of messages
        sent.
        """
        if not session.established:
            return 0
        sent = 0
        rib_out = self._adj_rib_out[session.session_id]
        for prefix in sorted(self._loc_rib.prefixes()):
            route = self._loc_rib.get(prefix)
            if route is None:
                continue
            egress: "PathAttributes | None" = None
            if self._may_export(route, session):
                egress = self._export_attributes(route, session)
            if egress is None:
                if rib_out.is_advertised(prefix):
                    self._withdraw_from_peer(session, prefix)
                    sent += 1
                continue
            if rib_out.last_advertised(prefix) == egress:
                continue
            self._advertise(session, prefix, egress)
            sent += 1
        return sent

    # ------------------------------------------------------------------
    # session state callbacks
    # ------------------------------------------------------------------
    def session_down(self, session: BGPSession) -> None:
        """Handle session teardown: flush RIBs and re-decide."""
        key = session.session_id
        affected = self._adj_rib_in[key].clear()
        self._adj_rib_out[key].clear()
        self._mrai_pending[key].clear()
        for prefix in sorted(affected):
            self._reconsider(prefix)

    def session_up(self, session: BGPSession) -> None:
        """Handle session (re-)establishment: send the full table."""
        for prefix in sorted(self._loc_rib.prefixes()):
            route = self._loc_rib.get(prefix)
            if route is None or not self._may_export(route, session):
                continue
            egress = self._export_attributes(route, session)
            if egress is None:
                continue
            self._advertise(session, prefix, egress)

    def __repr__(self) -> str:
        return (
            f"Router({self.name}, AS{int(self.asn)},"
            f" vendor='{self.vendor.name}')"
        )
