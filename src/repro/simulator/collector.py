"""Route collectors: the measurement apparatus.

A :class:`RouteCollector` mimics a RouteViews / RIPE RIS collector: it
peers with routers (multihop eBGP), never advertises anything, and
archives every received message with its arrival timestamp and session
envelope.  Records can be exported as genuine MRT bytes via
:meth:`RouteCollector.dump_mrt`, optionally at whole-second resolution
to emulate the legacy collectors whose data the paper's cleaning step
must disambiguate (§4).

Since the streaming-pipeline refactor the collector is a pipeline
*source*: every :class:`CollectedMessage` is pushed to attached sinks
(:meth:`attach_sink`) the moment it arrives, and the archive itself is
one of three :mod:`repro.pipeline.sinks` backends selected by
``archive_policy``:

* ``full`` — keep everything in memory (the classic behavior);
* ``ring:N`` — bounded memory, newest N messages retained;
* ``mrt-spill`` — nothing retained in RAM; the archive streams to an
  MRT file on disk and is replayable through :meth:`replay`.
"""

from __future__ import annotations

import io
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterator, List, Optional

from repro.bgp.message import BGPMessage, UpdateMessage
from repro.mrt.records import Bgp4mpMessage
from repro.mrt.writer import MRTWriter
from repro.netbase.asn import ASN
from repro.pipeline.sinks import (
    ArchiveSink,
    ListArchive,
    MrtSpillArchive,
    SequenceView,
    Sink,
    make_archive,
)
from repro.simulator.session import BGPSession


@dataclass(frozen=True)
class CollectedMessage:
    """One archived message with its session envelope."""

    timestamp: float
    collector: str
    peer_asn: ASN
    peer_address: str
    message: BGPMessage

    @property
    def is_update(self) -> bool:
        """True when the message is an UPDATE."""
        return isinstance(self.message, UpdateMessage)

    def session_key(self) -> "tuple[int, str]":
        """The (peer ASN, peer address) pair identifying the session."""
        return (int(self.peer_asn), self.peer_address)


class RouteCollector:
    """A passive BGP listener that archives everything it hears."""

    def __init__(
        self,
        network,
        name: str,
        asn: int = 12_456,
        *,
        archive_policy: str = "full",
        spill_dir: "Optional[str]" = None,
    ):
        self._network = network
        self.name = name
        self.asn = ASN(asn)
        # crc32, not hash(): str hashing is salted per process, and the
        # addresses must be identical across interpreter runs for
        # bit-reproducible archives.  The router id lives in
        # 198.51.100.1..200 and the collector-side MRT local address in
        # 198.51.100.201..254, so the two can never collide no matter
        # what the collector is called.
        digest = zlib.crc32(name.encode("utf-8"))
        self.router_id = f"198.51.100.{1 + (digest % 200)}"
        #: Deterministic per-collector MRT ``local_address`` (outside
        #: the router-id range by construction).
        self.local_address = f"198.51.100.{201 + (digest % 54)}"
        self.archive_policy = archive_policy
        self._archive: ArchiveSink = make_archive(
            archive_policy,
            spill_dir=spill_dir,
            prefix=f"repro-{name}-",
        )
        self._spills = isinstance(self._archive, MrtSpillArchive)
        self._sessions: List[BGPSession] = []
        self._sinks: "List[Sink]" = []

    # ------------------------------------------------------------------
    # pipeline attachment
    # ------------------------------------------------------------------
    def attach_sink(self, sink: "Sink") -> "Sink":
        """Stream every future :class:`CollectedMessage` to *sink*.

        Sinks see messages the moment they arrive — during warm-up
        convergence as well as the measured day — in exactly archive
        order.  Returns the sink for chaining.
        """
        self._sinks.append(sink)
        return sink

    def detach_sink(self, sink: "Sink") -> None:
        """Stop streaming to a previously attached sink."""
        self._sinks.remove(sink)

    # ------------------------------------------------------------------
    # node protocol (same duck type as Router)
    # ------------------------------------------------------------------
    def attach_session(self, session: BGPSession, **_ignored) -> None:
        """Register a collector session."""
        self._sessions.append(session)

    def receive(self, session: BGPSession, message: BGPMessage) -> None:
        """Archive an inbound message."""
        self.receive_batch(session, [message])

    def receive_batch(
        self, session: BGPSession, messages: "List[BGPMessage]"
    ) -> None:
        """Archive a coalesced burst of inbound messages in order."""
        timestamp = self._network.queue.now
        peer = session.other(self)
        peer_asn = ASN(peer.asn)
        peer_address = session.peer_address(self)
        spill = self._archive.push_fields if self._spills else None
        sinks = self._sinks
        for message in messages:
            if spill is not None:
                spill(
                    timestamp,
                    int(peer_asn),
                    int(self.asn),
                    peer_address,
                    self.local_address,
                    message,
                )
                if not sinks:
                    continue
            record = CollectedMessage(
                timestamp=timestamp,
                collector=self.name,
                peer_asn=peer_asn,
                peer_address=peer_address,
                message=message,
            )
            if spill is None:
                self._archive.push(record)
            for sink in sinks:
                sink.push(record)

    def session_down(self, session: BGPSession) -> None:
        """Collectors keep their archive across session churn."""

    def session_up(self, session: BGPSession) -> None:
        """Collectors never advertise, so nothing to resend."""

    # ------------------------------------------------------------------
    # archive access
    # ------------------------------------------------------------------
    @property
    def records(self) -> SequenceView:
        """Retained messages in arrival order (read-only, no copy).

        Under ``full`` this is every message ever heard; under
        ``ring:N`` the newest N; under ``mrt-spill`` it is empty —
        use :meth:`replay` to stream the on-disk archive instead.
        """
        return self._archive.retained

    @property
    def sessions(self) -> SequenceView:
        """The collector's peering sessions (read-only view)."""
        return SequenceView(self._sessions)

    @property
    def dropped_records(self) -> int:
        """Messages archived but no longer retained in memory."""
        return self._archive.dropped

    @property
    def spill_path(self) -> "Optional[str]":
        """The on-disk archive path under ``mrt-spill``, else None."""
        if self._spills:
            return self._archive.path
        return None

    def updates(self) -> Iterator[CollectedMessage]:
        """Retained records that carry an UPDATE message."""
        return (record for record in self._archive.retained if record.is_update)

    def clear(self) -> int:
        """Drop the archive (between experiment phases)."""
        return self._archive.clear()

    def message_count(self) -> int:
        """Number of archived messages (all-time, any policy)."""
        return self._archive.total_archived

    def close(self) -> None:
        """Release archive resources (flushes/closes spill files)."""
        self._archive.close()

    # ------------------------------------------------------------------
    # MRT export
    # ------------------------------------------------------------------
    def _to_bgp4mp_record(self, record: CollectedMessage) -> Bgp4mpMessage:
        return Bgp4mpMessage(
            timestamp=record.timestamp,
            peer_asn=int(record.peer_asn),
            local_asn=int(self.asn),
            peer_address=record.peer_address,
            local_address=self.local_address,
            message=record.message,
        )

    def to_bgp4mp(self) -> Iterator[Bgp4mpMessage]:
        """View the archive as MRT-ready records.

        Under ``mrt-spill`` the records are re-read from the spill
        file (full fidelity); under ``ring:N`` only the retained tail
        is available.
        """
        if self._spills:
            yield from self._archive.replay()
            return
        for record in self._archive.retained:
            yield self._to_bgp4mp_record(record)

    def replay(self) -> Iterator[Bgp4mpMessage]:
        """Alias of :meth:`to_bgp4mp` that reads better for sources."""
        return self.to_bgp4mp()

    def dump_mrt(
        self,
        stream: Optional[BinaryIO] = None,
        *,
        extended_timestamps: bool = True,
    ) -> bytes:
        """Write the archive as MRT; returns the bytes when unbuffered.

        ``extended_timestamps=False`` emulates legacy collectors that
        record at whole-second granularity.
        """
        own_buffer = stream is None
        target = stream if stream is not None else io.BytesIO()
        writer = MRTWriter(target, extended_timestamps=extended_timestamps)
        for record in self.to_bgp4mp():
            writer.write_bgp4mp(record)
        if own_buffer:
            return target.getvalue()  # type: ignore[union-attr]
        return b""

    def __repr__(self) -> str:
        return (
            f"RouteCollector({self.name}, sessions={len(self._sessions)},"
            f" records={self.message_count()},"
            f" policy={self.archive_policy})"
        )
