"""Route collectors: the measurement apparatus.

A :class:`RouteCollector` mimics a RouteViews / RIPE RIS collector: it
peers with routers (multihop eBGP), never advertises anything, and
archives every received message with its arrival timestamp and session
envelope.  Records can be exported as genuine MRT bytes via
:meth:`RouteCollector.dump_mrt`, optionally at whole-second resolution
to emulate the legacy collectors whose data the paper's cleaning step
must disambiguate (§4).
"""

from __future__ import annotations

import io
import zlib
from dataclasses import dataclass
from typing import BinaryIO, Iterator, List, Optional

from repro.bgp.message import BGPMessage, UpdateMessage
from repro.mrt.records import Bgp4mpMessage
from repro.mrt.writer import MRTWriter
from repro.netbase.asn import ASN
from repro.simulator.session import BGPSession


@dataclass(frozen=True)
class CollectedMessage:
    """One archived message with its session envelope."""

    timestamp: float
    collector: str
    peer_asn: ASN
    peer_address: str
    message: BGPMessage

    @property
    def is_update(self) -> bool:
        """True when the message is an UPDATE."""
        return isinstance(self.message, UpdateMessage)

    def session_key(self) -> "tuple[int, str]":
        """The (peer ASN, peer address) pair identifying the session."""
        return (int(self.peer_asn), self.peer_address)


class RouteCollector:
    """A passive BGP listener that archives everything it hears."""

    def __init__(self, network, name: str, asn: int = 12_456):
        self._network = network
        self.name = name
        self.asn = ASN(asn)
        # crc32, not hash(): str hashing is salted per process, and the
        # router id must be identical across interpreter runs for
        # bit-reproducible archives.
        self.router_id = (
            f"198.51.100.{1 + (zlib.crc32(name.encode('utf-8')) % 200)}"
        )
        self._sessions: List[BGPSession] = []
        self._records: List[CollectedMessage] = []

    # ------------------------------------------------------------------
    # node protocol (same duck type as Router)
    # ------------------------------------------------------------------
    def attach_session(self, session: BGPSession, **_ignored) -> None:
        """Register a collector session."""
        self._sessions.append(session)

    def receive(self, session: BGPSession, message: BGPMessage) -> None:
        """Archive an inbound message."""
        self.receive_batch(session, [message])

    def receive_batch(
        self, session: BGPSession, messages: "List[BGPMessage]"
    ) -> None:
        """Archive a coalesced burst of inbound messages in order."""
        timestamp = self._network.queue.now
        peer = session.other(self)
        peer_asn = ASN(peer.asn)
        peer_address = session.peer_address(self)
        self._records.extend(
            CollectedMessage(
                timestamp=timestamp,
                collector=self.name,
                peer_asn=peer_asn,
                peer_address=peer_address,
                message=message,
            )
            for message in messages
        )

    def session_down(self, session: BGPSession) -> None:
        """Collectors keep their archive across session churn."""

    def session_up(self, session: BGPSession) -> None:
        """Collectors never advertise, so nothing to resend."""

    # ------------------------------------------------------------------
    # archive access
    # ------------------------------------------------------------------
    @property
    def records(self) -> "list[CollectedMessage]":
        """Every archived message in arrival order."""
        return list(self._records)

    @property
    def sessions(self) -> "list[BGPSession]":
        """The collector's peering sessions."""
        return list(self._sessions)

    def updates(self) -> Iterator[CollectedMessage]:
        """Archived records that carry an UPDATE message."""
        return (record for record in self._records if record.is_update)

    def clear(self) -> int:
        """Drop the archive (between experiment phases)."""
        count = len(self._records)
        self._records.clear()
        return count

    def message_count(self) -> int:
        """Number of archived messages."""
        return len(self._records)

    # ------------------------------------------------------------------
    # MRT export
    # ------------------------------------------------------------------
    def to_bgp4mp(self) -> Iterator[Bgp4mpMessage]:
        """View the archive as MRT-ready records."""
        local_address = "198.51.100.250"
        for record in self._records:
            yield Bgp4mpMessage(
                timestamp=record.timestamp,
                peer_asn=int(record.peer_asn),
                local_asn=int(self.asn),
                peer_address=record.peer_address,
                local_address=local_address,
                message=record.message,
            )

    def dump_mrt(
        self,
        stream: Optional[BinaryIO] = None,
        *,
        extended_timestamps: bool = True,
    ) -> bytes:
        """Write the archive as MRT; returns the bytes when unbuffered.

        ``extended_timestamps=False`` emulates legacy collectors that
        record at whole-second granularity.
        """
        own_buffer = stream is None
        target = stream if stream is not None else io.BytesIO()
        writer = MRTWriter(target, extended_timestamps=extended_timestamps)
        for record in self.to_bgp4mp():
            writer.write_bgp4mp(record)
        if own_buffer:
            return target.getvalue()  # type: ignore[union-attr]
        return b""

    def __repr__(self) -> str:
        return (
            f"RouteCollector({self.name}, sessions={len(self._sessions)},"
            f" records={len(self._records)})"
        )
