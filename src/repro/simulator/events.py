"""Event queue driving the simulation.

A classic discrete-event core: a heap of ``(time, sequence, action)``
entries.  The sequence number breaks ties deterministically in
insertion order, which matters because BGP convergence outcomes can
depend on message ordering and the whole reproduction must be
replayable from a seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.netbase.timebase import SimClock


@dataclass(order=True)
class ScheduledEvent:
    """One queued action; ordering is (time, sequence)."""

    time: float
    sequence: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped."""
        self.cancelled = True


class EventQueue:
    """Time-ordered queue of simulation events."""

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._heap: "list[ScheduledEvent]" = []
        self._sequence = 0
        self._processed = 0

    @property
    def clock(self) -> SimClock:
        """The simulation clock this queue advances."""
        return self._clock

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._clock.now

    @property
    def pending(self) -> int:
        """Number of (possibly cancelled) queued events."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self, delay: float, action: Callable[[], None]
    ) -> ScheduledEvent:
        """Queue *action* to run *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self._clock.now + delay, action)

    def schedule_at(
        self, when: float, action: Callable[[], None]
    ) -> ScheduledEvent:
        """Queue *action* to run at absolute time *when*."""
        if when < self._clock.now:
            raise ValueError(
                f"cannot schedule in the past: {when} < {self._clock.now}"
            )
        event = ScheduledEvent(when, self._sequence, action)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Execute events in time order.

        Stops when the queue is empty, when the next event is after
        *until*, or after *max_events* executions (a convergence-loop
        backstop).  Returns the number of events executed.
        """
        executed = 0
        while self._heap:
            if max_events is not None and executed >= max_events:
                break
            head = self._heap[0]
            if head.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and head.time > until:
                break
            heapq.heappop(self._heap)
            self._clock.advance_to(head.time)
            head.action()
            executed += 1
            self._processed += 1
        if until is not None and self._clock.now < until:
            self._clock.advance_to(until)
        return executed

    def run_until_idle(self, *, max_events: int = 1_000_000) -> int:
        """Run until no events remain (bounded by *max_events*)."""
        executed = self.run(max_events=max_events)
        if self._live_pending():
            raise RuntimeError(
                f"simulation did not quiesce within {max_events} events"
            )
        return executed

    def _live_pending(self) -> int:
        return sum(1 for event in self._heap if not event.cancelled)
