"""Event queue driving the simulation.

A classic discrete-event core: a heap of ``(time, sequence, event)``
entries.  The sequence number breaks ties deterministically in
insertion order, which matters because BGP convergence outcomes can
depend on message ordering and the whole reproduction must be
replayable from a seed.

The heap stores plain tuples so ordering comparisons run in C; the
``(time, sequence)`` pair is unique, so the trailing
:class:`ScheduledEvent` handle never participates in a comparison.
Cancellation is lazy — a cancelled handle stays in the heap as a
tombstone until popped — but the queue compacts itself whenever
tombstones outnumber live entries, so churn-heavy runs (damping,
beacon flaps) cannot grow the heap unboundedly.
"""

from __future__ import annotations

import heapq
import math
from typing import Callable, Optional

from repro.netbase.timebase import SimClock


class ScheduledEvent:
    """Handle for one queued action; queue ordering is (time, sequence)."""

    __slots__ = (
        "time",
        "sequence",
        "action",
        "cancelled",
        "executed",
        "_queue",
    )

    def __init__(
        self,
        time: float,
        sequence: int,
        action: Callable[[], None],
        queue: "EventQueue",
    ):
        self.time = time
        self.sequence = sequence
        self.action = action
        self.cancelled = False
        self.executed = False
        self._queue = queue

    def cancel(self) -> None:
        """Mark the event dead; it will be skipped when popped.

        Cancelling an event that already ran (or was already cancelled)
        is a no-op — callers like the beacon scheduler cancel whole
        handle lists without tracking which phases have fired, and only
        events still in the heap may count as tombstones.
        """
        if not self.cancelled and not self.executed:
            self.cancelled = True
            self._queue._note_cancelled()


class EventQueue:
    """Time-ordered queue of simulation events."""

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._heap: "list[tuple[float, int, ScheduledEvent]]" = []
        self._sequence = 0
        self._processed = 0
        self._cancelled = 0
        self._peak_pending = 0

    @property
    def clock(self) -> SimClock:
        """The simulation clock this queue advances."""
        return self._clock

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self._clock.now

    @property
    def pending(self) -> int:
        """Number of queued entries, cancelled tombstones included."""
        return len(self._heap)

    @property
    def live_pending(self) -> int:
        """Number of queued events that will actually execute."""
        return len(self._heap) - self._cancelled

    @property
    def peak_pending(self) -> int:
        """High-water mark of the heap size (tombstones included)."""
        return self._peak_pending

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule(
        self, delay: float, action: Callable[[], None]
    ) -> ScheduledEvent:
        """Queue *action* to run *delay* seconds from now."""
        if delay < 0:
            raise ValueError(f"negative delay: {delay}")
        return self.schedule_at(self._clock.now + delay, action)

    def schedule_at(
        self, when: float, action: Callable[[], None]
    ) -> ScheduledEvent:
        """Queue *action* to run at absolute time *when*.

        Timestamps accumulated through repeated float addition can land
        an ulp or two before ``now``; such drift is clamped to ``now``
        rather than rejected.  Genuinely past times still raise.
        """
        now = self._clock.now
        if when < now:
            # A few hundred ulps covers timestamps recomputed through
            # long float sums (a day of 0.1 s steps drifts ~40 ulps)
            # while staying microseconds-scale at epoch clocks — far
            # below any session delay, so genuinely past times still
            # fail loudly.
            tolerance = max(1e-9, 256.0 * math.ulp(now))
            if now - when > tolerance:
                raise ValueError(
                    f"cannot schedule in the past: {when} < {now}"
                )
            when = now
        event = ScheduledEvent(when, self._sequence, action, self)
        self._sequence += 1
        heapq.heappush(self._heap, (when, event.sequence, event))
        if len(self._heap) > self._peak_pending:
            self._peak_pending = len(self._heap)
        return event

    def _note_cancelled(self) -> None:
        """Count one tombstone; compact when they outnumber live events."""
        self._cancelled += 1
        if self._cancelled * 2 > len(self._heap):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without tombstones.

        Mutates the list in place: :meth:`run` may hold a reference to
        it across an action that triggers compaction.
        """
        self._heap[:] = (
            entry for entry in self._heap if not entry[2].cancelled
        )
        heapq.heapify(self._heap)
        self._cancelled = 0

    def run(
        self,
        *,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> int:
        """Execute events in time order.

        Stops when the queue is empty, when the next event is after
        *until*, or after *max_events* executions (a convergence-loop
        backstop).  Returns the number of events executed.
        """
        executed = 0
        heap = self._heap
        pop = heapq.heappop
        advance_to = self._clock.advance_to
        while heap:
            if max_events is not None and executed >= max_events:
                break
            when, _sequence, event = heap[0]
            if event.cancelled:
                pop(heap)
                self._cancelled -= 1
                continue
            if until is not None and when > until:
                break
            pop(heap)
            event.executed = True
            advance_to(when)
            event.action()
            executed += 1
            self._processed += 1
        if until is not None and self._clock.now < until:
            advance_to(until)
        return executed

    def run_until_idle(self, *, max_events: int = 1_000_000) -> int:
        """Run until no events remain (bounded by *max_events*)."""
        executed = self.run(max_events=max_events)
        if self.live_pending:
            raise RuntimeError(
                f"simulation did not quiesce within {max_events} events"
            )
        return executed
