"""Physical links carrying BGP sessions.

The lab experiments "disable the Y1 to Y2 link" — a physical failure
that takes the iBGP session riding it down with it.  A :class:`Link`
groups the sessions riding one physical adjacency so failure and
recovery affect them together.
"""

from __future__ import annotations

from typing import Iterable, List

from repro.simulator.session import BGPSession


class Link:
    """A physical adjacency between two nodes."""

    def __init__(self, name: str, sessions: Iterable[BGPSession] = ()):
        self.name = name
        self._sessions: List[BGPSession] = list(sessions)
        self._up = True

    @property
    def sessions(self) -> "list[BGPSession]":
        """Sessions riding this link."""
        return list(self._sessions)

    @property
    def is_up(self) -> bool:
        """Current link state."""
        return self._up

    def attach(self, session: BGPSession) -> None:
        """Ride *session* over this link."""
        self._sessions.append(session)
        if not self._up:
            session.bring_down()

    def fail(self) -> None:
        """Take the link (and every session on it) down."""
        if not self._up:
            return
        self._up = False
        for session in self._sessions:
            session.bring_down()

    def restore(self) -> None:
        """Bring the link and its sessions back up."""
        if self._up:
            return
        self._up = True
        for session in self._sessions:
            session.bring_up()

    def flap(self, network, *, down_for: float) -> None:
        """Fail now and schedule restoration after *down_for* seconds."""
        self.fail()
        network.queue.schedule(down_for, self.restore)

    def __repr__(self) -> str:
        state = "up" if self._up else "down"
        return f"Link({self.name}, {state}, sessions={len(self._sessions)})"
