"""Route-flap damping (RFC 2439).

The paper (§2) notes that "mechanisms such as route dampening and MRAI
timers have been explored, but may offer suboptimal performance in
reacting to routing events. Thus, these mechanisms are selectively
deployed."  This module implements the RFC 2439 penalty model so that
the ablation benchmarks can quantify exactly that trade-off on the
synthetic internet: damping absorbs community-exploration bursts, but
at the cost of delayed reachability after genuine changes.

Model (per (peer, prefix)):

* every flap (withdrawal, or re-announcement with changed attributes)
  adds a penalty;
* the penalty decays exponentially with a configured half-life;
* when the penalty exceeds the *suppress* threshold the route is
  damped: announcements are withheld;
* when decay brings it below the *reuse* threshold the route is
  released again;
* the penalty is capped so that a route is never suppressed longer
  than ``max_suppress_time``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.netbase.prefix import Prefix

#: Default parameters follow the common vendor defaults (Cisco):
#: penalties are in abstract units, times in seconds.
WITHDRAWAL_PENALTY = 1000.0
ATTRIBUTE_CHANGE_PENALTY = 500.0
DEFAULT_SUPPRESS_THRESHOLD = 2000.0
DEFAULT_REUSE_THRESHOLD = 750.0
DEFAULT_HALF_LIFE = 15 * 60.0
DEFAULT_MAX_SUPPRESS = 60 * 60.0


@dataclass
class DampingConfig:
    """RFC 2439 parameter set."""

    suppress_threshold: float = DEFAULT_SUPPRESS_THRESHOLD
    reuse_threshold: float = DEFAULT_REUSE_THRESHOLD
    half_life: float = DEFAULT_HALF_LIFE
    max_suppress_time: float = DEFAULT_MAX_SUPPRESS
    withdrawal_penalty: float = WITHDRAWAL_PENALTY
    attribute_change_penalty: float = ATTRIBUTE_CHANGE_PENALTY

    def __post_init__(self):
        if self.reuse_threshold >= self.suppress_threshold:
            raise ValueError(
                "reuse threshold must be below suppress threshold"
            )
        if self.half_life <= 0:
            raise ValueError("half-life must be positive")

    @property
    def max_penalty(self) -> float:
        """Penalty ceiling implied by the maximum suppression time.

        RFC 2439: the ceiling guarantees a route decays from the cap to
        the reuse threshold within ``max_suppress_time``.
        """
        return self.reuse_threshold * math.pow(
            2.0, self.max_suppress_time / self.half_life
        )


@dataclass
class _DampingEntry:
    penalty: float
    updated_at: float
    suppressed: bool


class RouteDamper:
    """Per-(peer, prefix) flap damping state.

    The damper is passive: callers report flaps via :meth:`penalize`
    and ask :meth:`is_suppressed` before propagating announcements.
    """

    def __init__(self, config: "DampingConfig | None" = None):
        self.config = config or DampingConfig()
        self._entries: Dict[Tuple[str, Prefix], _DampingEntry] = {}
        #: Counters for the ablation reports.
        self.suppressions = 0
        self.releases = 0

    # ------------------------------------------------------------------
    # state evolution
    # ------------------------------------------------------------------
    def _decayed_penalty(
        self, entry: _DampingEntry, now: float
    ) -> float:
        elapsed = max(0.0, now - entry.updated_at)
        return entry.penalty * math.pow(
            0.5, elapsed / self.config.half_life
        )

    def penalize(
        self,
        peer: str,
        prefix: Prefix,
        now: float,
        *,
        is_withdrawal: bool,
    ) -> bool:
        """Record one flap; returns True when the route is suppressed."""
        key = (peer, prefix)
        entry = self._entries.get(key)
        increment = (
            self.config.withdrawal_penalty
            if is_withdrawal
            else self.config.attribute_change_penalty
        )
        if entry is None:
            entry = _DampingEntry(
                penalty=increment, updated_at=now, suppressed=False
            )
            self._entries[key] = entry
        else:
            penalty = self._decayed_penalty(entry, now) + increment
            entry.penalty = min(penalty, self.config.max_penalty)
            entry.updated_at = now
        if (
            not entry.suppressed
            and entry.penalty >= self.config.suppress_threshold
        ):
            entry.suppressed = True
            self.suppressions += 1
        return entry.suppressed

    def is_suppressed(self, peer: str, prefix: Prefix, now: float) -> bool:
        """Check (and lazily update) the suppression state."""
        key = (peer, prefix)
        entry = self._entries.get(key)
        if entry is None:
            return False
        penalty = self._decayed_penalty(entry, now)
        entry.penalty = penalty
        entry.updated_at = now
        # RFC 2439 §4.4.4: a route is reused once its penalty reaches
        # the reuse threshold — decaying to *exactly* the threshold
        # releases it (<=, not <; a strict compare would hold the route
        # one extra decay interval, and would break the max-suppress
        # guarantee, which lands exactly on the threshold at the cap).
        if entry.suppressed and penalty <= self.config.reuse_threshold:
            entry.suppressed = False
            self.releases += 1
        if not entry.suppressed and penalty < 1.0:
            # Fully decayed: forget the entry to bound memory.
            del self._entries[key]
            return False
        return entry.suppressed

    def penalty_of(
        self, peer: str, prefix: Prefix, now: float
    ) -> float:
        """Current decayed penalty (0 when unknown)."""
        entry = self._entries.get((peer, prefix))
        if entry is None:
            return 0.0
        return self._decayed_penalty(entry, now)

    def reuse_eta(
        self, peer: str, prefix: Prefix, now: float
    ) -> Optional[float]:
        """Seconds until a suppressed route becomes reusable."""
        entry = self._entries.get((peer, prefix))
        if entry is None or not entry.suppressed:
            return None
        penalty = self._decayed_penalty(entry, now)
        if penalty <= self.config.reuse_threshold:
            return 0.0
        return self.config.half_life * math.log2(
            penalty / self.config.reuse_threshold
        )

    def tracked_routes(self) -> int:
        """Number of (peer, prefix) pairs currently carrying penalty."""
        return len(self._entries)
