"""The paper's controlled laboratory experiments (§3, Figure 1).

Topology::

    C1 --- X1 --- Y1 --- (iBGP) --- Y2 --- Z1
                   \\--- (iBGP) --- Y3 ---/
                        Y2 -(iBGP)- Y3

* AS C (collector), AS X, AS Y (three routers, full iBGP mesh), AS Z.
* Z1 originates prefix ``p``; both Y2 and Y3 peer with Z1.
* Y1 prefers the route via Y2 (lower router ID tie-breaker), exactly as
  the paper's "BGP tie breaker selects Y2".

Each experiment converges the network, clears the capture state, then
disables the Y1–Y2 link and records what crosses the X1–Y1 wire and
what reaches the collector.  Four configurations reproduce Exp1–Exp4:

===== ==========================================================
Exp1  no communities anywhere
Exp2  Y2/Y3 geo-tag at ingress (Y:300 / Y:400), nobody filters
Exp3  Exp2 + X1 strips all communities on *egress* toward C1
Exp4  Exp2 + X1 strips all communities on *ingress* from Y1
===== ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from repro.bgp.community import Community, CommunitySet
from repro.bgp.message import UpdateMessage
from repro.netbase.prefix import Prefix
from repro.policy.engine import PolicyChain, RoutingPolicy
from repro.policy.filters import AddCommunity, StripAllCommunities
from repro.simulator.network import Network
from repro.vendors.profiles import ALL_PROFILES, VendorProfile

#: The beacon-like prefix originated by Z1 in every lab run.
LAB_PREFIX = Prefix("203.0.113.0/24")

#: ASNs of the four lab autonomous systems.
AS_X, AS_Y, AS_Z, AS_C = 64500, 64510, 64520, 12456

#: The ingress geo-tags used from Exp2 onward (paper: Y:300 and Y:400).
TAG_Y2 = Community.of(AS_Y, 300)
TAG_Y3 = Community.of(AS_Y, 400)

EXPERIMENTS = ("exp1", "exp2", "exp3", "exp4")


@dataclass
class CapturedMessage:
    """One message seen on a tapped link."""

    timestamp: float
    sender: str
    kind: str  # "announce" | "withdraw"
    as_path: str
    communities: str

    @classmethod
    def from_update(
        cls, timestamp: float, sender_name: str, message: UpdateMessage
    ) -> "CapturedMessage":
        if message.is_announcement:
            attributes = message.attributes
            return cls(
                timestamp=timestamp,
                sender=sender_name,
                kind="announce",
                as_path=str(attributes.as_path),
                communities=str(attributes.communities),
            )
        return cls(
            timestamp=timestamp,
            sender=sender_name,
            kind="withdraw",
            as_path="",
            communities="",
        )


@dataclass
class ExperimentResult:
    """Observations from one lab run."""

    experiment: str
    vendor: str
    #: Messages captured on the X1–Y1 wire after the link event.
    x1_y1_messages: List[CapturedMessage] = field(default_factory=list)
    #: Messages that reached the collector after the link event.
    collector_messages: List[CapturedMessage] = field(default_factory=list)
    #: (AS path, communities) the collector held before the link event.
    pre_event_state: "tuple[str, str] | None" = None

    @property
    def update_sent_y1_to_x1(self) -> bool:
        """Did Y1 send any update toward X1?"""
        return any(m.sender == "Y1" for m in self.x1_y1_messages)

    @property
    def update_reached_collector(self) -> bool:
        """Did anything arrive at C1?"""
        return bool(self.collector_messages)

    @property
    def collector_saw_community_change(self) -> bool:
        """Did the collector-visible update carry communities?"""
        return any(
            m.kind == "announce" and m.communities
            for m in self.collector_messages
        )

    @property
    def collector_saw_duplicate(self) -> bool:
        """Did the collector receive an `nn`-style duplicate?

        True when an announcement arrived whose AS path and communities
        match what the collector already had — possible only in Exp3.
        """
        previous = self.pre_event_state
        for message in self.collector_messages:
            if message.kind != "announce":
                continue
            key = (message.as_path, message.communities)
            if previous == key:
                return True
            previous = key
        return False

    def summary_row(self) -> "tuple[str, str, str, str, str]":
        """(experiment, vendor, Y1→X1?, collector?, note) for tables."""
        if not self.update_sent_y1_to_x1:
            note = "suppressed at Y1"
        elif not self.update_reached_collector:
            note = "absorbed at X1"
        elif self.collector_saw_community_change:
            note = "community-only update at collector"
        else:
            note = "duplicate (no change) at collector"
        return (
            self.experiment,
            self.vendor,
            "yes" if self.update_sent_y1_to_x1 else "no",
            "yes" if self.update_reached_collector else "no",
            note,
        )


class LabTopology:
    """Builds and runs the Figure 1 network for one experiment."""

    def __init__(
        self,
        experiment: str,
        vendor: VendorProfile,
        *,
        mrai: float = 0.0,
    ):
        if experiment not in EXPERIMENTS:
            raise ValueError(f"unknown experiment: {experiment!r}")
        self.experiment = experiment
        self.vendor = vendor
        self.network = Network()
        self._mrai = mrai
        self._build()

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self) -> None:
        net = self.network
        self.c1 = net.add_collector("C1", AS_C)
        self.x1 = net.add_router(
            "X1", AS_X, router_id="192.0.2.10", vendor=self.vendor
        )
        self.y1 = net.add_router(
            "Y1", AS_Y, router_id="192.0.2.21", vendor=self.vendor
        )
        self.y2 = net.add_router(
            "Y2", AS_Y, router_id="192.0.2.22", vendor=self.vendor
        )
        self.y3 = net.add_router(
            "Y3", AS_Y, router_id="192.0.2.23", vendor=self.vendor
        )
        self.z1 = net.add_router(
            "Z1", AS_Z, router_id="192.0.2.30", vendor=self.vendor
        )

        tag_y2 = self._ingress_policy(TAG_Y2)
        tag_y3 = self._ingress_policy(TAG_Y3)
        x1_from_y1 = None
        x1_to_c1 = None
        if self.experiment == "exp3":
            x1_to_c1 = RoutingPolicy(
                export_chain=PolicyChain((StripAllCommunities(),))
            )
        if self.experiment == "exp4":
            x1_from_y1 = RoutingPolicy(
                import_chain=PolicyChain((StripAllCommunities(),))
            )

        # Collector side: C1 <-> X1.
        net.connect(self.c1, self.x1, policy_b=x1_to_c1, mrai=self._mrai)
        # Inter-AS: X1 <-> Y1.
        self.session_x1_y1 = net.connect(
            self.x1, self.y1, policy_a=x1_from_y1, mrai=self._mrai
        )
        # iBGP full mesh inside AS Y, with the Y1-Y2 session on a
        # failable physical link.
        self.link_y1_y2 = net.add_link("Y1-Y2")
        net.connect(self.y1, self.y2, link=self.link_y1_y2, mrai=self._mrai)
        net.connect(self.y1, self.y3, mrai=self._mrai)
        net.connect(self.y2, self.y3, mrai=self._mrai)
        # AS Y border: both Y2 and Y3 peer with Z1.
        net.connect(self.y2, self.z1, policy_a=tag_y2, mrai=self._mrai)
        net.connect(self.y3, self.z1, policy_a=tag_y3, mrai=self._mrai)

        self.z1.originate(LAB_PREFIX)
        net.converge()

    def _ingress_policy(self, tag: Community) -> "RoutingPolicy | None":
        if self.experiment == "exp1":
            return None
        return RoutingPolicy(import_chain=PolicyChain((AddCommunity(tag),)))

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self) -> ExperimentResult:
        """Fail the Y1–Y2 link and capture the fallout."""
        result = ExperimentResult(
            experiment=self.experiment, vendor=self.vendor.name
        )
        pre_path = self.best_path_at_collector()
        pre_communities = self.communities_at_collector()
        if pre_path is not None:
            result.pre_event_state = (
                pre_path,
                str(pre_communities) if pre_communities else "",
            )
        pre_collector = self.c1.message_count()

        def wire_tap(timestamp: float, sender, message) -> None:
            if isinstance(message, UpdateMessage):
                result.x1_y1_messages.append(
                    CapturedMessage.from_update(
                        timestamp, sender.name, message
                    )
                )

        self.session_x1_y1.taps.append(wire_tap)
        self.link_y1_y2.fail()
        self.network.converge()
        for record in self.c1.records[pre_collector:]:
            if isinstance(record.message, UpdateMessage):
                result.collector_messages.append(
                    CapturedMessage.from_update(
                        record.timestamp, "X1", record.message
                    )
                )
        return result

    def best_path_at_collector(self) -> Optional[str]:
        """The AS path of the last announcement C1 received."""
        last = None
        for record in self.c1.records:
            if (
                isinstance(record.message, UpdateMessage)
                and record.message.is_announcement
            ):
                last = str(record.message.attributes.as_path)
        return last

    def communities_at_collector(self) -> Optional[CommunitySet]:
        """Communities on the last announcement C1 received."""
        last = None
        for record in self.c1.records:
            if (
                isinstance(record.message, UpdateMessage)
                and record.message.is_announcement
            ):
                last = record.message.attributes.communities
        return last


def run_experiment(
    experiment: str, vendor: VendorProfile, *, mrai: float = 0.0
) -> ExperimentResult:
    """Build the lab, run one experiment with one vendor."""
    return LabTopology(experiment, vendor, mrai=mrai).run()


def run_all_experiments(
    vendors: "tuple[VendorProfile, ...]" = ALL_PROFILES,
) -> "list[ExperimentResult]":
    """The full §3 behavior matrix: every experiment × every vendor."""
    results = []
    for experiment in EXPERIMENTS:
        for vendor in vendors:
            results.append(run_experiment(experiment, vendor))
    return results
