"""BGP sessions between simulated nodes.

A session is a bidirectional message channel with a propagation delay
and an established/down state.  The session also owns the per-direction
MRAI (minimum route advertisement interval) state used by the pacing
ablation — the paper notes MRAI and route-flap damping are only
selectively deployed, so the default interval is 0 (no pacing).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Optional

from repro.bgp.message import BGPMessage

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.simulator.network import Network


class SessionKind(enum.Enum):
    """eBGP crosses AS borders; iBGP stays inside one AS."""

    EBGP = "ebgp"
    IBGP = "ibgp"


class _DeliveryBatch:
    """Messages headed to one receiver at one fire time."""

    __slots__ = ("fire_at", "messages")

    def __init__(self, fire_at: float, messages: "list[BGPMessage]"):
        self.fire_at = fire_at
        self.messages = messages


class BGPSession:
    """One BGP session between two nodes (router or collector)."""

    _counter = 0

    def __init__(
        self,
        network: "Network",
        node_a,
        node_b,
        *,
        kind: SessionKind,
        delay: float = 0.01,
        address_a: Optional[str] = None,
        address_b: Optional[str] = None,
        mrai: float = 0.0,
    ):
        BGPSession._counter += 1
        self.session_id = BGPSession._counter
        self._network = network
        self._node_a = node_a
        self._node_b = node_b
        self.kind = kind
        #: Precomputed: read on every import/export decision.
        self.is_ebgp = kind == SessionKind.EBGP
        self.delay = float(delay)
        self.mrai = float(mrai)
        self._address_a = address_a or f"10.{self.session_id >> 8}.{self.session_id & 0xFF}.1"
        self._address_b = address_b or f"10.{self.session_id >> 8}.{self.session_id & 0xFF}.2"
        self.established = True
        #: Per-direction earliest next advertisement time (MRAI state),
        #: keyed by the sending node.  The keys are looked up, never
        #: iterated or serialized, so the process-local values cannot
        #: reach collector output.
        # repro: allow(DET001) id() keys transient per-endpoint state; endpoints outlive the session and the dict is never iterated or persisted
        self._next_send_allowed = {id(node_a): 0.0, id(node_b): 0.0}
        #: Packet-capture hooks: callables ``(time, sender, message)``
        #: invoked for every message put on the wire.  The lab
        #: experiments tap the X1–Y1 link with these, mirroring the
        #: paper's tcpdump between X1 and Y1.
        self.taps: "list" = []
        #: Open delivery batches, keyed by ``id(receiver)``: messages
        #: sent to the same endpoint with the same fire time share one
        #: queue event instead of one event per message.
        self._open_batches: "dict[int, _DeliveryBatch]" = {}

    # ------------------------------------------------------------------
    # endpoint bookkeeping
    # ------------------------------------------------------------------
    @property
    def node_a(self):
        """First endpoint."""
        return self._node_a

    @property
    def node_b(self):
        """Second endpoint."""
        return self._node_b

    def other(self, node):
        """The endpoint opposite *node*."""
        if node is self._node_a:
            return self._node_b
        if node is self._node_b:
            return self._node_a
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def local_address(self, node) -> str:
        """The session address of *node*."""
        if node is self._node_a:
            return self._address_a
        if node is self._node_b:
            return self._address_b
        raise ValueError(f"{node!r} is not an endpoint of {self!r}")

    def peer_address(self, node) -> str:
        """The session address of the endpoint opposite *node*."""
        return self.local_address(self.other(node))

    # ------------------------------------------------------------------
    # message transport
    # ------------------------------------------------------------------
    def send(self, sender, message: BGPMessage) -> bool:
        """Deliver *message* to the opposite endpoint after the delay.

        Returns False (dropping the message) when the session is down —
        mirroring TCP teardown: nothing crosses a dead session.

        When the network enables delivery batching (the default),
        messages to the same receiver with the same fire time ride one
        queue event as a coalesced list, mirroring how a TCP stream
        hands a burst of UPDATEs to the peer in one read.  FIFO order
        per (receiver, fire time) is preserved exactly; only when two
        *different* receivers collide on the exact same float fire
        time can their relative processing order differ from unbatched
        mode.  With per-session delays drawn from a continuous range
        (the synthetic-internet default) such collisions do not occur
        and collector output is bit-identical — `bench_core.py
        --verify` checks exactly that.
        """
        if not self.established:
            return False
        receiver = self.other(sender)
        queue = self._network.queue
        if self.taps:
            now = queue.now
            for tap in self.taps:
                tap(now, sender, message)
        if not self._network.batch_delivery:
            queue.schedule(
                self.delay, lambda: self._deliver(receiver, message)
            )
            return True
        fire_at = queue.now + self.delay
        # repro: allow(DET001) id() is the open-batch key for one receiver; batches are drained by the same key and never ordered or output
        key = id(receiver)
        batch = self._open_batches.get(key)
        if batch is not None and batch.fire_at == fire_at:
            batch.messages.append(message)
        else:
            batch = _DeliveryBatch(fire_at, [message])
            self._open_batches[key] = batch
            queue.schedule_at(
                fire_at,
                lambda: self._deliver_batch(receiver, key, batch),
            )
        return True

    def _deliver(self, receiver, message: BGPMessage) -> None:
        if not self.established:
            return
        receiver.receive(self, message)

    def _deliver_batch(
        self, receiver, key: int, batch: _DeliveryBatch
    ) -> None:
        if self._open_batches.get(key) is batch:
            del self._open_batches[key]
        if not self.established:
            return
        receiver.receive_batch(self, batch.messages)

    # ------------------------------------------------------------------
    # MRAI pacing
    # ------------------------------------------------------------------
    def mrai_wait(self, sender) -> float:
        """Seconds *sender* must still wait before advertising (0 = now)."""
        if self.mrai <= 0:
            return 0.0
        # repro: allow(DET001) id() mirrors the constructor's MRAI-state key; lookup only, never iterated or persisted
        allowed_at = self._next_send_allowed[id(sender)]
        return max(0.0, allowed_at - self._network.queue.now)

    def mark_advertisement(self, sender) -> None:
        """Start *sender*'s MRAI window after an advertisement batch."""
        if self.mrai > 0:
            # repro: allow(DET001) id() mirrors the constructor's MRAI-state key; lookup only, never iterated or persisted
            self._next_send_allowed[id(sender)] = (
                self._network.queue.now + self.mrai
            )

    # ------------------------------------------------------------------
    # state changes
    # ------------------------------------------------------------------
    def bring_down(self) -> None:
        """Tear the session down and notify both endpoints."""
        if not self.established:
            return
        self.established = False
        for node in (self._node_a, self._node_b):
            node.session_down(self)

    def bring_up(self) -> None:
        """Re-establish the session and trigger initial table exchange."""
        if self.established:
            return
        self.established = True
        for node in (self._node_a, self._node_b):
            node.session_up(self)

    def __repr__(self) -> str:
        state = "up" if self.established else "down"
        return (
            f"BGPSession({self._node_a.name}<->{self._node_b.name},"
            f" {self.kind.value}, {state})"
        )
