"""Network: the container wiring routers, collectors, sessions, links.

A :class:`Network` owns the clock and event queue and provides the
builder API the lab topology and the synthetic internet both use.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional

from repro.netbase.timebase import SimClock
from repro.rib.decision import DecisionConfig
from repro.simulator.collector import RouteCollector
from repro.simulator.events import EventQueue
from repro.simulator.link import Link
from repro.simulator.router import Router
from repro.simulator.session import BGPSession, SessionKind
from repro.vendors.profiles import CISCO_IOS, VendorProfile

#: Default IGP distance for internal (iBGP) next hops.
DEFAULT_IBGP_COST = 5


class Network:
    """A simulated BGP internetwork."""

    def __init__(
        self,
        *,
        start_time: float = 0.0,
        batch_delivery: bool = True,
        archive_policy: str = "full",
        spill_dir: "Optional[str]" = None,
    ):
        self.clock = SimClock(start_time)
        self.queue = EventQueue(self.clock)
        #: Coalesce same-fire-time messages per session direction into
        #: one queue event (see :meth:`BGPSession.send` for the exact
        #: ordering guarantee).  Turning this off gives the classic
        #: one-event-per-message granularity.
        self.batch_delivery = bool(batch_delivery)
        #: Default collector archive policy: ``full`` | ``ring:N`` |
        #: ``mrt-spill`` (see :mod:`repro.pipeline.sinks`).
        self.archive_policy = archive_policy
        #: Directory for ``mrt-spill`` archives (None: system temp).
        self.spill_dir = spill_dir
        self.routers: Dict[str, Router] = {}
        self.collectors: Dict[str, RouteCollector] = {}
        self.links: Dict[str, Link] = {}
        self._sessions: "list[BGPSession]" = []
        self._igp_costs: Dict[tuple, int] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_router(
        self,
        name: str,
        asn: int,
        *,
        router_id: Optional[str] = None,
        vendor: VendorProfile = CISCO_IOS,
        decision_config: "DecisionConfig | None" = None,
        transparent: bool = False,
    ) -> Router:
        """Create and register a router."""
        if name in self.routers or name in self.collectors:
            raise ValueError(f"duplicate node name: {name}")
        if router_id is None:
            router_id = f"192.0.2.{len(self.routers) + 1}"
        router = Router(
            self,
            name,
            asn,
            router_id,
            vendor=vendor,
            decision_config=decision_config,
            transparent=transparent,
        )
        self.routers[name] = router
        return router

    def add_collector(
        self,
        name: str,
        asn: int = 12_456,
        *,
        archive_policy: "Optional[str]" = None,
        spill_dir: "Optional[str]" = None,
    ) -> RouteCollector:
        """Create and register a route collector.

        ``archive_policy``/``spill_dir`` default to the network-wide
        settings passed to :class:`Network`.
        """
        if name in self.routers or name in self.collectors:
            raise ValueError(f"duplicate node name: {name}")
        collector = RouteCollector(
            self,
            name,
            asn,
            archive_policy=(
                archive_policy
                if archive_policy is not None
                else self.archive_policy
            ),
            spill_dir=spill_dir if spill_dir is not None else self.spill_dir,
        )
        self.collectors[name] = collector
        return collector

    def connect(
        self,
        node_a,
        node_b,
        *,
        delay: float = 0.01,
        mrai: float = 0.0,
        policy_a=None,
        policy_b=None,
        ingress_point_a: Optional[str] = None,
        ingress_point_b: Optional[str] = None,
        link: Optional[Link] = None,
    ) -> BGPSession:
        """Create a session between two nodes and attach endpoints.

        The session kind is inferred: same ASN → iBGP, else eBGP.
        """
        kind = (
            SessionKind.IBGP
            if int(node_a.asn) == int(node_b.asn)
            else SessionKind.EBGP
        )
        session = BGPSession(
            self, node_a, node_b, kind=kind, delay=delay, mrai=mrai
        )
        node_a.attach_session(
            session, policy=policy_a, ingress_point=ingress_point_a
        )
        node_b.attach_session(
            session, policy=policy_b, ingress_point=ingress_point_b
        )
        self._sessions.append(session)
        if link is not None:
            link.attach(session)
        return session

    def add_link(self, name: str) -> Link:
        """Create a named physical link for failure experiments."""
        if name in self.links:
            raise ValueError(f"duplicate link name: {name}")
        link = Link(name)
        self.links[name] = link
        return link

    # ------------------------------------------------------------------
    # IGP model
    # ------------------------------------------------------------------
    def set_igp_cost(self, router: Router, session: BGPSession, cost: int) -> None:
        """Set the IGP distance from *router* to next hops via *session*."""
        self._igp_costs[(router.name, session.session_id)] = int(cost)

    def igp_cost(self, router: Router, session: BGPSession) -> int:
        """IGP distance used by the decision process (hot potato)."""
        explicit = self._igp_costs.get((router.name, session.session_id))
        if explicit is not None:
            return explicit
        return 0 if session.is_ebgp else DEFAULT_IBGP_COST

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    @property
    def sessions(self) -> "list[BGPSession]":
        """Every session in the network."""
        return list(self._sessions)

    def run(self, **kwargs) -> int:
        """Run queued events (see :meth:`EventQueue.run`)."""
        return self.queue.run(**kwargs)

    def run_until_idle(self, **kwargs) -> int:
        """Run until the network quiesces."""
        return self.queue.run_until_idle(**kwargs)

    def converge(self, *, max_events: int = 1_000_000) -> int:
        """Alias for :meth:`run_until_idle` that reads better in setup."""
        return self.run_until_idle(max_events=max_events)

    def total_messages_sent(self) -> "tuple[int, int]":
        """(updates, withdrawals) summed over all routers."""
        updates = sum(r.sent_updates for r in self.routers.values())
        withdrawals = sum(
            r.sent_withdrawals for r in self.routers.values()
        )
        return updates, withdrawals

    def __repr__(self) -> str:
        return (
            f"Network(routers={len(self.routers)},"
            f" collectors={len(self.collectors)},"
            f" sessions={len(self._sessions)}, t={self.clock.now})"
        )
