"""Concrete policy steps: community filters, taggers, and knobs.

These are the levers the paper's experiments pull:

* :class:`AddCommunity` — Exp2's ingress geo-tagging (Y2 adds Y:300).
* :class:`StripAllCommunities` on export — Exp3's egress cleaning,
  which still leaks `nn` duplicates on non-Junos routers.
* :class:`StripAllCommunities` on import — Exp4's ingress cleaning,
  which keeps the RIB clean and fully suppresses the spurious update.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.bgp.attributes import PathAttributes
from repro.bgp.community import Community, CommunitySet, LargeCommunity
from repro.policy.engine import PolicyContext, PolicyStep


class StripAllCommunities(PolicyStep):
    """Remove the entire community attribute (classic and large)."""

    def apply(self, attributes, context):
        if attributes.communities.is_empty():
            return attributes
        return attributes.with_communities(CommunitySet.empty())

    def describe(self) -> str:
        return "strip-all-communities"


class StripCommunitiesOfASN(PolicyStep):
    """Remove communities administered by a specific ASN."""

    def __init__(self, asn: int):
        self._asn = int(asn)

    def apply(self, attributes, context):
        cleaned = attributes.communities.without_asn(self._asn)
        if cleaned == attributes.communities:
            return attributes
        return attributes.with_communities(cleaned)

    def describe(self) -> str:
        return f"strip-communities-of-as{self._asn}"


class StripCommunitiesMatching(PolicyStep):
    """Remove communities for which *predicate* returns True."""

    def __init__(self, predicate: Callable, description: str = "predicate"):
        self._predicate = predicate
        self._description = description

    def apply(self, attributes, context):
        kept = attributes.communities.filter(
            lambda community: not self._predicate(community)
        )
        if kept == attributes.communities:
            return attributes
        return attributes.with_communities(kept)

    def describe(self) -> str:
        return f"strip-communities-matching({self._description})"


class KeepOnlyOwnCommunities(PolicyStep):
    """Drop every community not administered by the local AS.

    The hygienic egress policy the paper recommends: an AS that scrubs
    foreign tags cannot transitively propagate a neighbor's geo noise.
    """

    def apply(self, attributes, context):
        kept = attributes.communities.only_asn(int(context.local_asn))
        if kept == attributes.communities:
            return attributes
        return attributes.with_communities(kept)

    def describe(self) -> str:
        return "keep-only-own-communities"


class AddCommunity(PolicyStep):
    """Add fixed communities (informational tagging)."""

    def __init__(self, *communities: "Community | LargeCommunity | str"):
        resolved = []
        for item in communities:
            if isinstance(item, str):
                if item.count(":") == 2:
                    resolved.append(LargeCommunity.parse(item))
                else:
                    resolved.append(Community.parse(item))
            else:
                resolved.append(item)
        if not resolved:
            raise ValueError("AddCommunity requires at least one community")
        self._communities = tuple(resolved)

    @property
    def communities(self) -> tuple:
        """The communities this step adds."""
        return self._communities

    def apply(self, attributes, context):
        updated = attributes.communities.add(*self._communities)
        if updated == attributes.communities:
            return attributes
        return attributes.with_communities(updated)

    def describe(self) -> str:
        tags = " ".join(str(c) for c in self._communities)
        return f"add-community({tags})"


class SetMED(PolicyStep):
    """Set (or clear, with None) the MED attribute."""

    def __init__(self, med: "int | None"):
        self._med = med

    def apply(self, attributes, context):
        if attributes.med == self._med:
            return attributes
        return attributes.replace(med=self._med)

    def describe(self) -> str:
        return f"set-med({self._med})"


class SetLocalPref(PolicyStep):
    """Set LOCAL_PREF (import side of eBGP sessions)."""

    def __init__(self, local_pref: int):
        self._local_pref = int(local_pref)

    def apply(self, attributes, context):
        if attributes.local_pref == self._local_pref:
            return attributes
        return attributes.replace(local_pref=self._local_pref)

    def describe(self) -> str:
        return f"set-local-pref({self._local_pref})"


class PrependASN(PolicyStep):
    """Prepend the local ASN extra times on export (traffic engineering).

    This is the mechanism behind the paper's (rare) ``xc``/``xn``
    announcement types.
    """

    def __init__(self, count: int = 1):
        if count < 1:
            raise ValueError(f"prepend count must be >= 1, got {count}")
        self._count = count

    def apply(self, attributes, context):
        return attributes.with_prepend(context.local_asn, self._count)

    def describe(self) -> str:
        return f"prepend-own-asn(x{self._count})"


class RejectPrefixes(PolicyStep):
    """Reject routes for specific prefixes (selective announcement)."""

    def __init__(self, prefixes: Iterable):
        self._prefixes = frozenset(prefixes)

    def apply(self, attributes, context):
        if context.prefix in self._prefixes:
            return None
        return attributes

    def describe(self) -> str:
        return f"reject-prefixes({len(self._prefixes)})"
