"""Geographic community tagging.

Large transit ASes tag routes at ingress with the location where they
were received — the paper's measured example is AS3356 (Lumen), whose
route via (20205 3356 174 12654) revealed 9 distinct ingress locations
(city, country and continent communities) during a single day's
withdrawal phases (§6, Figure 4).

:class:`GeoCommunityScheme` models the common encoding convention:
one 16-bit local-value band per granularity, e.g.

* continent:  ``ASN:5x``    (51 Europe, 52 North America, ...)
* country:    ``ASN:1xx``   (100 + country index)
* city:       ``ASN:3xx``   (300 + city/PoP index)

so a single ingress point contributes up to three communities, exactly
the "two geographical regions, two country, nine city" mix the paper
reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional

from repro.bgp.community import Community, CommunitySet
from repro.policy.engine import PolicyContext, PolicyStep

#: Continent index used by the default scheme.
CONTINENTS = (
    "europe",
    "north-america",
    "asia",
    "south-america",
    "africa",
    "oceania",
)


@dataclass(frozen=True)
class GeoLocation:
    """One ingress location: continent / country / city triple."""

    continent: str
    country: str
    city: str

    def __post_init__(self):
        if self.continent not in CONTINENTS:
            raise ValueError(f"unknown continent: {self.continent!r}")

    def __str__(self) -> str:
        return f"{self.city}, {self.country}, {self.continent}"


class GeoCommunityScheme:
    """Maps locations to community values for one tagging AS."""

    #: Local-value bases for each granularity band.
    CONTINENT_BASE = 50
    COUNTRY_BASE = 100
    CITY_BASE = 300

    def __init__(self, asn: int):
        self._asn = int(asn)
        self._country_index: Dict[str, int] = {}
        self._city_index: Dict[str, int] = {}

    @property
    def asn(self) -> int:
        """The tagging AS."""
        return self._asn

    def communities_for(self, location: GeoLocation) -> CommunitySet:
        """All communities encoding *location* (continent+country+city)."""
        continent_value = (
            self.CONTINENT_BASE + 1 + CONTINENTS.index(location.continent)
        )
        country_value = self.COUNTRY_BASE + self._index(
            self._country_index, location.country
        )
        city_value = self.CITY_BASE + self._index(
            self._city_index, location.city
        )
        return CommunitySet(
            (
                Community.of(self._asn, continent_value),
                Community.of(self._asn, country_value),
                Community.of(self._asn, city_value),
            )
        )

    def granularity_of(self, community: Community) -> Optional[str]:
        """Classify a community of this AS as continent/country/city."""
        if community.asn != self._asn:
            return None
        value = community.local_value
        if self.CONTINENT_BASE < value <= self.CONTINENT_BASE + len(CONTINENTS):
            return "continent"
        if self.COUNTRY_BASE <= value < self.CITY_BASE:
            return "country"
        if value >= self.CITY_BASE:
            return "city"
        return None

    @staticmethod
    def _index(table: Dict[str, int], key: str) -> int:
        if key not in table:
            table[key] = len(table)
        return table[key]


class GeoTagger(PolicyStep):
    """Import policy step: tag routes with the ingress location.

    The tagger is configured with a mapping from ingress-point names
    (as carried in :class:`~repro.policy.engine.PolicyContext`) to
    :class:`GeoLocation`.  Routes arriving at an unknown ingress point
    pass through untouched — matching how real networks only tag at
    instrumented edges.
    """

    def __init__(
        self,
        asn: int,
        locations: "dict[str, GeoLocation]",
        *,
        scheme: "GeoCommunityScheme | None" = None,
        replace_previous: bool = True,
    ):
        self._asn = int(asn)
        self._locations = dict(locations)
        self._scheme = scheme or GeoCommunityScheme(asn)
        self._replace_previous = bool(replace_previous)
        # Pre-compute the tag set per ingress point: stable indices.
        self._tags = {
            point: self._scheme.communities_for(location)
            for point, location in sorted(self._locations.items())
        }

    @property
    def scheme(self) -> GeoCommunityScheme:
        """The community encoding scheme."""
        return self._scheme

    @property
    def ingress_points(self) -> "list[str]":
        """Names of the instrumented ingress points."""
        return sorted(self._locations)

    def location_of(self, ingress_point: str) -> Optional[GeoLocation]:
        """The configured location for an ingress point."""
        return self._locations.get(ingress_point)

    def apply(self, attributes, context: PolicyContext):
        tags = self._tags.get(context.ingress_point or "")
        if tags is None:
            return attributes
        communities = attributes.communities
        if self._replace_previous:
            # Re-tagging at a new ingress replaces this AS's own tags;
            # a route cannot be "in Dallas and Vienna" simultaneously.
            communities = communities.without_asn(self._asn)
        updated = communities.union(tags)
        if updated == attributes.communities:
            return attributes
        return attributes.with_communities(updated)

    def describe(self) -> str:
        return f"geo-tag(as{self._asn}, {len(self._locations)} ingresses)"


def build_locations(entries: Iterable["tuple[str, str, str, str]"]):
    """Convenience: build the GeoTagger mapping from 4-tuples.

    Each entry is ``(ingress_point, continent, country, city)``.
    """
    return {
        point: GeoLocation(continent, country, city)
        for point, continent, country, city in entries
    }
