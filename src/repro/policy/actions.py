"""Action communities: in-band signals honored by the receiving AS.

The paper's taxonomy (after Donnet & Bonaventure, and RFC 8195) splits
communities into *informational* (geo-tags, handled in
:mod:`repro.policy.geo`) and *action* communities.  We model the two
action families that matter for message dynamics:

* the well-known NO_EXPORT / NO_ADVERTISE scoping communities, honored
  by the router's export logic, and
* RFC 7999 BLACKHOLE, honored by a provider-side import policy.
"""

from __future__ import annotations

from repro.bgp.attributes import PathAttributes
from repro.bgp.community import (
    BLACKHOLE,
    NO_ADVERTISE,
    NO_EXPORT,
    NO_EXPORT_SUBCONFED,
)
from repro.policy.engine import PolicyContext, PolicyStep


def honor_no_export(attributes: PathAttributes, *, is_ebgp: bool) -> bool:
    """Return True when the route may be advertised on this session.

    NO_ADVERTISE blocks every advertisement; NO_EXPORT (and the
    subconfed variant, which we treat identically since we do not model
    confederations) blocks only eBGP sessions.
    """
    communities = attributes.communities
    if NO_ADVERTISE in communities:
        return False
    if is_ebgp and (
        NO_EXPORT in communities or NO_EXPORT_SUBCONFED in communities
    ):
        return False
    return True


def is_blackhole(attributes: PathAttributes) -> bool:
    """True when the route carries the RFC 7999 BLACKHOLE community."""
    return BLACKHOLE in attributes.communities


class BlackholePolicy(PolicyStep):
    """Provider import step honoring customer blackhole requests.

    Accepting a blackhole route means installing it with maximal
    preference (so it wins) and scoping it with NO_EXPORT so the DoS
    mitigation does not leak beyond the provider — the RFC 7999
    recommended behavior.  Non-blackhole routes pass through.
    """

    def __init__(self, *, local_pref: int = 10_000):
        self._local_pref = int(local_pref)

    def apply(self, attributes, context: PolicyContext):
        if not is_blackhole(attributes):
            return attributes
        return attributes.replace(
            local_pref=self._local_pref,
            communities=attributes.communities.add(NO_EXPORT),
        )

    def describe(self) -> str:
        return f"blackhole(local-pref={self._local_pref})"
