"""Routing policy: community tagging, filtering, and action handling.

Policies are small composable transforms applied at session ingress
(import) and egress (export).  The paper's taxonomy maps directly:

* *informational* communities (geo-tags) are added by import policies —
  see :class:`~repro.policy.geo.GeoTagger`;
* community *cleaning* happens in import or export filter steps — see
  :mod:`repro.policy.filters`; the ingress/egress distinction is the
  whole difference between the paper's Exp3 and Exp4;
* *action* communities (blackhole, NO_EXPORT) are honored by export
  logic — see :mod:`repro.policy.actions`.
"""

from repro.policy.engine import (
    PolicyStep,
    PolicyChain,
    RoutingPolicy,
    AcceptAll,
    RejectAll,
)
from repro.policy.filters import (
    StripAllCommunities,
    StripCommunitiesOfASN,
    StripCommunitiesMatching,
    KeepOnlyOwnCommunities,
    AddCommunity,
    SetMED,
    SetLocalPref,
    PrependASN,
)
from repro.policy.geo import GeoTagger, GeoLocation, GeoCommunityScheme
from repro.policy.actions import (
    honor_no_export,
    is_blackhole,
    BlackholePolicy,
)

__all__ = [
    "PolicyStep",
    "PolicyChain",
    "RoutingPolicy",
    "AcceptAll",
    "RejectAll",
    "StripAllCommunities",
    "StripCommunitiesOfASN",
    "StripCommunitiesMatching",
    "KeepOnlyOwnCommunities",
    "AddCommunity",
    "SetMED",
    "SetLocalPref",
    "PrependASN",
    "GeoTagger",
    "GeoLocation",
    "GeoCommunityScheme",
    "honor_no_export",
    "is_blackhole",
    "BlackholePolicy",
]
