"""Policy engine: composable import/export transform chains.

A :class:`PolicyStep` maps ``(PathAttributes, PolicyContext)`` to new
attributes or ``None`` (reject).  A :class:`PolicyChain` applies steps
in order, short-circuiting on rejection.  A :class:`RoutingPolicy`
bundles an import chain and an export chain for one BGP neighbor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.bgp.attributes import PathAttributes
from repro.netbase.asn import ASN
from repro.netbase.prefix import Prefix


@dataclass(frozen=True, slots=True)
class PolicyContext:
    """Facts a policy step may consult.

    ``local_asn``/``peer_asn`` identify the session direction;
    ``prefix`` is the route's destination; ``ingress_point`` names the
    router/location where the route enters the AS (geo-taggers encode
    it into a community).
    """

    local_asn: ASN
    peer_asn: ASN
    prefix: Prefix
    ingress_point: Optional[str] = None
    is_ebgp: bool = True


class PolicyStep:
    """Base class: one attribute transform.

    Subclasses override :meth:`apply`; returning ``None`` rejects the
    route, any other value replaces the attribute set.
    """

    def apply(
        self, attributes: PathAttributes, context: PolicyContext
    ) -> "PathAttributes | None":
        """Transform *attributes*; None rejects the route."""
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable description for configuration dumps."""
        return type(self).__name__

    def __repr__(self) -> str:
        return f"<{self.describe()}>"


class AcceptAll(PolicyStep):
    """Identity transform (the default import/export policy)."""

    def apply(self, attributes, context):
        return attributes


class RejectAll(PolicyStep):
    """Reject every route (session filtering)."""

    def apply(self, attributes, context):
        return None


class PolicyChain:
    """An ordered list of steps applied left to right."""

    __slots__ = ("_steps",)

    def __init__(self, steps: Iterable[PolicyStep] = ()):
        self._steps = tuple(steps)
        for step in self._steps:
            if not isinstance(step, PolicyStep):
                raise TypeError(f"not a PolicyStep: {step!r}")

    @property
    def steps(self) -> tuple:
        """The steps in application order."""
        return self._steps

    def apply(
        self, attributes: PathAttributes, context: PolicyContext
    ) -> "PathAttributes | None":
        """Run the chain; None when any step rejects."""
        current = attributes
        for step in self._steps:
            current = step.apply(current, context)
            if current is None:
                return None
        return current

    def then(self, *steps: PolicyStep) -> "PolicyChain":
        """Return a new chain with *steps* appended."""
        return PolicyChain(self._steps + steps)

    def describe(self) -> str:
        """Render the chain as ``step -> step -> ...``."""
        if not self._steps:
            return "accept"
        return " -> ".join(step.describe() for step in self._steps)

    def __len__(self) -> int:
        return len(self._steps)

    def __repr__(self) -> str:
        return f"PolicyChain({self.describe()})"


@dataclass
class RoutingPolicy:
    """Per-neighbor import and export chains."""

    import_chain: PolicyChain = field(default_factory=PolicyChain)
    export_chain: PolicyChain = field(default_factory=PolicyChain)

    @classmethod
    def permissive(cls) -> "RoutingPolicy":
        """Accept and propagate everything unchanged.

        This is the paper's "no community filtering" default that makes
        community exploration visible at collectors.
        """
        return cls()

    def describe(self) -> str:
        """Render both chains for configuration dumps."""
        return (
            f"import: {self.import_chain.describe()};"
            f" export: {self.export_chain.describe()}"
        )
