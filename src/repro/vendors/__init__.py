"""Vendor behavior profiles."""

from repro.vendors.profiles import (
    VendorProfile,
    CISCO_IOS,
    CISCO_IOS_XR,
    JUNOS,
    BIRD,
    BIRD2,
    ALL_PROFILES,
    profile_by_name,
)

__all__ = [
    "VendorProfile",
    "CISCO_IOS",
    "CISCO_IOS_XR",
    "JUNOS",
    "BIRD",
    "BIRD2",
    "ALL_PROFILES",
    "profile_by_name",
]
