"""``python -m repro`` — the same CLI as ``python -m repro.cli``."""

import sys

from repro.cli import main

sys.exit(main())
