#!/usr/bin/env python
"""Per-AS community-behavior inference (the paper's §7 future work).

    "By characterizing the way individual ASes observe and process
     communities, our work provides a first step toward predicting
     anomalous communities."

This example simulates a day, runs the tomography classifier over the
collector feeds, and — because the synthetic internet knows every AS's
true practice — scores the inference the way a real study never could.

Run:  python examples/tomography_inference.py
"""

from repro.analysis import observations_from_collector
from repro.analysis.tomography import (
    CommunityBehaviorClassifier,
    InferredBehavior,
    score_against_ground_truth,
)
from repro.reports import render_table
from repro.workloads import InternetConfig, InternetModel


def main() -> None:
    print("simulating one day of a small internet ...")
    day = InternetModel(InternetConfig.small()).run()

    classifier = CommunityBehaviorClassifier(min_samples=30)
    for collector in day.collectors():
        classifier.observe_all(observations_from_collector(collector))
    inferences = classifier.infer_all()

    ground_truth = {
        asn: practice.value for asn, practice in day.practices.items()
    }
    rows = [
        (
            f"AS{inference.asn}",
            inference.behavior.value,
            ground_truth.get(inference.asn, "?"),
            "OK" if _matches(inference, ground_truth) else "x",
            f"{inference.own_tag_ratio:.2f}",
            f"{inference.upstream_survival_ratio:.2f}",
            inference.sample_size,
        )
        for inference in inferences
        if inference.behavior != InferredBehavior.UNKNOWN
    ]
    print()
    print(
        render_table(
            ("AS", "inferred", "truth", "", "own-tag", "survival", "n"),
            rows,
            title="per-AS community behavior, inferred from the feed",
        )
    )
    scores = score_against_ground_truth(inferences, ground_truth)
    print()
    for name, value in sorted(scores.items()):
        print(f"  {name}: {value:.2f}")
    print()
    print(
        "every row uses only collector-visible evidence; the 'truth'\n"
        "column is the simulation's ground truth — the validation the\n"
        "paper's future-work plan would need a testbed for."
    )


def _matches(inference, ground_truth) -> bool:
    truth = ground_truth.get(inference.asn, "")
    if truth == "tagger":
        return inference.behavior == InferredBehavior.TAGGER
    if truth.startswith("cleaner"):
        return inference.behavior == InferredBehavior.CLEANER
    return inference.behavior == InferredBehavior.IGNORER


if __name__ == "__main__":
    main()
