#!/usr/bin/env python
"""What-if: how much collector traffic would community hygiene save?

The paper's recommendation is that operators should filter BGP
communities more rigorously.  This example quantifies the claim on the
synthetic internet by simulating the same day three times:

* baseline          — the calibrated practice mix (most ASes propagate
                      blindly);
* everyone-cleans   — every AS strips foreign communities at ingress
                      (the paper's Exp4 hygiene, applied globally);
* nobody-tags       — geo-tagging disabled entirely (upper bound).

Run:  python examples/filtering_what_if.py
"""

from repro.analysis import (
    classify_observations,
    observations_from_collector,
)
from repro.reports import format_share, render_table
from repro.workloads import InternetConfig, InternetModel


def simulate(label, **overrides):
    config = InternetConfig.small(**overrides)
    day = InternetModel(config).run()
    observations = []
    for collector in day.collectors():
        observations.extend(observations_from_collector(collector))
    observations.sort(key=lambda obs: obs.timestamp)
    counts = classify_observations(observations)
    return label, day.total_collected_messages(), counts


def main() -> None:
    print("simulating three policy worlds (same topology, same events) ...")
    scenarios = [
        simulate("baseline (calibrated mix)"),
        simulate(
            "everyone cleans at ingress",
            tagger_fraction=0.0,
            cleaner_ingress_fraction=1.0,
            cleaner_egress_fraction=0.0,
            community_churn_events=10,
        ),
        simulate(
            "nobody tags",
            tagger_fraction=0.0,
        ),
    ]
    rows = []
    for label, total, counts in scenarios:
        rows.append(
            (
                label,
                total,
                format_share(counts.no_path_change_share()),
            )
        )
    print()
    print(
        render_table(
            ("world", "collector msgs", "nc+nn share"),
            rows,
            title="what community hygiene buys (small internet, 1 day)",
        )
    )
    baseline_total = scenarios[0][1]
    cleaned_total = scenarios[1][1]
    saved = 1 - cleaned_total / baseline_total
    print()
    print(
        f"global ingress cleaning removes {saved:.0%} of collector-"
        "visible messages on this workload — the operational payoff"
    )
    print("the paper argues for in §7.")


if __name__ == "__main__":
    main()
