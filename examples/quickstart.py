#!/usr/bin/env python
"""Quickstart: build a tiny internet, flap a link, classify the fallout.

This walks through the library's three layers in ~60 lines:

1. the **simulator** — routers with real BGP pipelines and vendor
   behavior, wired into a topology with a route collector;
2. the **policy engine** — a transit AS that geo-tags routes at
   ingress (the behavior the paper shows causes community-only
   updates);
3. the **analysis** layer — the paper's pc/pn/nc/nn/xc/xn classifier
   over the collector's archive.

Run:  python examples/quickstart.py
"""

from repro.analysis import build_table2, observations_from_collector
from repro.netbase import Prefix
from repro.policy import AddCommunity, PolicyChain, RoutingPolicy
from repro.reports import format_share, render_table
from repro.simulator import Network
from repro.vendors import CISCO_IOS

# --- 1. a four-AS chain: origin -> transit (two parallel links) ------
network = Network()
origin = network.add_router("origin", 65001, vendor=CISCO_IOS)
transit = network.add_router("transit", 65002, vendor=CISCO_IOS)
peer = network.add_router("peer", 65003, vendor=CISCO_IOS)
collector = network.add_collector("rrc00")

# Two parallel origin-transit links; the transit tags each ingress with
# a different informational community (a "geo" tag).
link_a = network.add_link("origin-transit-A")
link_b = network.add_link("origin-transit-B")
network.connect(
    origin, transit,
    policy_b=RoutingPolicy(
        import_chain=PolicyChain((AddCommunity("65002:301"),))
    ),
    link=link_a,
)
network.connect(
    origin, transit,
    policy_b=RoutingPolicy(
        import_chain=PolicyChain((AddCommunity("65002:302"),))
    ),
    link=link_b,
)
network.connect(transit, peer)
network.connect(peer, collector)

# --- 2. originate a prefix and converge ------------------------------
prefix = Prefix("203.0.113.0/24")
origin.originate(prefix)
network.converge()
print(f"converged; collector heard {collector.message_count()} message(s)")

# --- 3. flap the preferred link a few times --------------------------
for _ in range(3):
    link_a.flap(network, down_for=60.0)
    network.converge()

# --- 4. classify what the collector saw ------------------------------
observations = list(observations_from_collector(collector))
table = build_table2(observations)
rows = [
    (code, description, format_share(share))
    for code, description, share, _beacon in table.as_rows()
]
print()
print(render_table(("type", "meaning", "share"), rows,
                   title="announcement types at the collector"))
print()
print(
    "note the nc announcements: the AS path never changed, only the\n"
    "transit's ingress tag did — the paper's 'community exploration'."
)
