#!/usr/bin/env python
"""Community exploration around beacon withdrawals (paper §6).

Simulates a small internet for one day with RIPE-style routing beacons
(announce 00:00 + 4h, withdraw 02:00 + 4h UTC), then:

1. finds the beacon stream with the strongest community exploration
   (the Figure 4 pattern: pc followed by runs of nc announcements
   inside withdrawal phases);
2. detects exploration bursts and prints them;
3. runs the revealed-information analysis — how many unique community
   attributes only ever surface during withdrawal-driven path
   exploration (the paper: ≈62%).

Run:  python examples/beacon_community_exploration.py
"""

from repro.analysis import (
    AnnouncementType,
    CommunityExplorationDetector,
    group_into_streams,
    observations_from_collector,
)
from repro.analysis.exploration import stream_phase_activity
from repro.analysis.revealed import revealed_communities
from repro.netbase.timebase import format_utc
from repro.reports import format_share, render_table
from repro.workloads import InternetConfig, InternetModel


def main() -> None:
    print("simulating one day of a small internet with beacons ...")
    day = InternetModel(InternetConfig.small()).run()
    observations = []
    for collector in day.collectors():
        observations.extend(observations_from_collector(collector))
    observations.sort(key=lambda obs: obs.timestamp)

    beacons = set(day.beacon_prefixes)
    beacon_observations = [
        obs for obs in observations if obs.prefix in beacons
    ]
    streams = group_into_streams(beacon_observations)
    print(
        f"collected {len(observations)} observations,"
        f" {len(beacon_observations)} on {len(beacons)} beacon prefixes"
        f" across {len(streams)} (session, prefix) streams"
    )

    # --- the most exploration-heavy stream (Figure 4 style) ----------
    def nc_count(stream):
        return stream_phase_activity(stream).type_counts()[
            AnnouncementType.NC
        ]

    key = max(streams, key=lambda key: nc_count(streams[key]))
    session, prefix = key
    activity = stream_phase_activity(streams[key])
    print()
    rows = [
        (format_utc(when), kind.value) for when, kind in activity.events
    ]
    print(
        render_table(
            ("time", "type"),
            rows[:30],
            title=(
                f"stream {prefix} via AS{session.peer_asn}"
                f" @ {session.collector} (first 30 announcements)"
            ),
        )
    )

    # --- detected bursts ---------------------------------------------
    events = CommunityExplorationDetector().detect(streams)
    print()
    print(
        render_table(
            ("start", "opener", "spurious", "distinct communities"),
            [
                (
                    format_utc(event.start),
                    event.opener.value,
                    event.spurious_count,
                    event.distinct_communities,
                )
                for event in events[:15]
            ],
            title=f"exploration bursts detected: {len(events)} total",
        )
    )

    # --- revealed information ------------------------------------------
    result = revealed_communities(beacon_observations)
    print()
    print(
        render_table(
            ("category", "count", "share"),
            [
                (label, count, format_share(share))
                for label, count, share in result.as_rows()
            ],
            title="revealed unique community attributes (paper: ~62% "
            "exclusively during withdrawals)",
        )
    )


if __name__ == "__main__":
    main()
