#!/usr/bin/env python
"""The measurement pipeline end to end, through real MRT bytes.

This example demonstrates that the analysis layer consumes the same
artifact researchers download from RouteViews / RIPE RIS: an MRT
update archive.  It

1. simulates a day and dumps each collector's feed as RFC 6396 MRT —
   one archive at microsecond resolution, one at legacy whole-second
   resolution (some real collectors still record that way);
2. re-parses the archives with the MRT reader;
3. runs the paper's §4 cleaning pipeline (unallocated-resource
   filtering against the synthetic RIR registry, route-server AS-path
   repair, same-second timestamp disambiguation);
4. classifies announcement types on the cleaned feed.

If you have real ``updates.*`` MRT files, steps 2-4 run on them
unchanged: `MRTReader(open(path, 'rb'))`.

Run:  python examples/mrt_pipeline.py
"""

import io

from repro.analysis import (
    CleaningPipeline,
    build_table2,
    observations_from_mrt,
)
from repro.mrt import MRTReader
from repro.reports import format_share, render_table
from repro.workloads import InternetConfig, InternetModel


def main() -> None:
    print("simulating one day ...")
    day = InternetModel(InternetConfig.small()).run()

    # --- dump and re-parse MRT archives -------------------------------
    observations = []
    for index, collector in enumerate(day.collectors()):
        legacy = index % 2 == 1  # every other collector: 1s resolution
        archive = collector.dump_mrt(extended_timestamps=not legacy)
        print(
            f"{collector.name}: {len(archive):,} bytes of MRT"
            f" ({'1s' if legacy else 'microsecond'} timestamps),"
            f" {collector.message_count()} records"
        )
        reader = MRTReader(io.BytesIO(archive), tolerant=True)
        observations.extend(
            observations_from_mrt(reader, collector.name)
        )
    observations.sort(key=lambda obs: obs.timestamp)
    print(f"re-parsed {len(observations)} per-prefix observations")

    # --- §4 cleaning ---------------------------------------------------
    pipeline = CleaningPipeline(oracle=day.registry)
    cleaned, report = pipeline.run(observations)
    print()
    print(report.summary())
    if report.route_server_peers:
        peers = ", ".join(
            f"AS{session.peer_asn}@{session.collector}"
            for session in sorted(
                report.route_server_peers,
                key=lambda s: (s.collector, s.peer_asn),
            )
        )
        print(f"transparent route-server peers repaired: {peers}")

    # --- classification -------------------------------------------------
    table = build_table2(cleaned, set(day.beacon_prefixes))
    rows = [
        (code, description, format_share(full), format_share(beacon))
        for code, description, full, beacon in table.as_rows()
    ]
    print()
    print(
        render_table(
            ("type", "observed changes", "full feed", "beacons"),
            rows,
            title="announcement types after cleaning",
        )
    )


if __name__ == "__main__":
    main()
