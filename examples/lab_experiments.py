#!/usr/bin/env python
"""Reproduce the paper's §3 controlled lab experiments (Exp1-Exp4).

Runs the registered ``lab-baseline`` scenario through the scenario
engine: the Figure 1 topology (collector C1 — X1 — Y1 — {Y2,Y3} — Z1)
with real vendor behavior profiles, the Y1-Y2 link disabled, and the
fallout recorded for every experiment × every router implementation
the paper tested.  The whole matrix is one declarative spec — see
``repro scenario list`` for the catalog it lives in.

Run:  python examples/lab_experiments.py
"""

from repro.reports import render_table
from repro.scenarios import get_scenario, run_scenario

DESCRIPTIONS = {
    "exp1": "no communities (internal next-hop change only)",
    "exp2": "Y2/Y3 geo-tag at ingress, nobody filters",
    "exp3": "exp2 + X1 strips communities on EGRESS",
    "exp4": "exp2 + X1 strips communities on INGRESS",
}


def main() -> None:
    result = run_scenario(get_scenario("lab-baseline"))
    matrix = result.metrics["lab_matrix"]
    print(
        render_table(
            matrix["headers"],
            matrix["rows"],
            title="Lab behavior matrix (paper §3, Figure 1 topology)",
        )
    )
    print()
    for experiment, description in DESCRIPTIONS.items():
        print(f"{experiment}: {description}")
    print()
    print(f"scenario: {result.name}  spec hash: {result.spec_hash}")
    print(
        f"nn duplicates reaching the collector:"
        f" {matrix['duplicates_at_collector']} cell(s)"
    )
    print()
    print("Paper findings reproduced:")
    print(" * Exp1: all vendors except Junos emit an update with an")
    print("   unchanged AS path after an internal next-hop change;")
    print("   it is absorbed at X1 and never reaches the collector.")
    print(" * Exp2: a community change alone propagates all the way")
    print("   to the collector, on every implementation.")
    print(" * Exp3: egress cleaning still leaks an exact duplicate")
    print("   (nn) to the collector — unless the router is Junos,")
    print("   which compares against Adj-RIB-Out before sending.")
    print(" * Exp4: ingress cleaning keeps the RIB clean, so the")
    print("   spurious update is fully suppressed on all vendors.")


if __name__ == "__main__":
    main()
