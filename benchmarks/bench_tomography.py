"""Bench A4 (paper §7 future work): per-AS community-behavior inference.

    "Using more sophisticated network tomography techniques, we plan to
     classify per-AS community behavior, for instance those that tag,
     filter, and ignore."

We run the classifier over the mar20-like collector feed and score it
against the synthetic internet's ground-truth practice assignment —
something the paper could not do on real data, but which validates the
inference approach it proposes.
"""

from repro.analysis import observations_from_collector
from repro.analysis.tomography import (
    CommunityBehaviorClassifier,
    InferredBehavior,
    score_against_ground_truth,
)
from repro.reports import format_share, render_table


def test_bench_tomography(benchmark, mar20_day, mar20_observations):
    def infer():
        classifier = CommunityBehaviorClassifier(min_samples=40)
        classifier.observe_all(mar20_observations)
        return classifier.infer_all()

    inferences = benchmark.pedantic(infer, rounds=1, iterations=1)
    ground_truth = {
        asn: practice.value
        for asn, practice in mar20_day.practices.items()
    }
    scores = score_against_ground_truth(inferences, ground_truth)
    rows = [
        (
            f"AS{inference.asn}",
            inference.behavior.value,
            ground_truth.get(inference.asn, "?"),
            f"{inference.own_tag_ratio:.2f}",
            f"{inference.upstream_survival_ratio:.2f}",
            inference.sample_size,
        )
        for inference in inferences[:25]
        if inference.behavior != InferredBehavior.UNKNOWN
    ]
    print()
    print(
        render_table(
            ("AS", "inferred", "truth", "own-tag", "survival", "n"),
            rows,
            title=(
                "A4: per-AS community behavior inference (top 25 by"
                " evidence)"
            ),
        )
    )
    print(
        "scores: "
        + ", ".join(
            f"{name}={value:.2f}" for name, value in sorted(scores.items())
        )
    )
    assert scores["classified"] >= 10
    assert scores["accuracy"] > 0.5, scores
