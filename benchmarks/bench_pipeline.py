#!/usr/bin/env python
"""Streaming-pipeline benchmark: events/sec and memory per policy.

Runs ladder scenarios with a live analysis sink (collector →
:class:`ObservationStream` → :class:`UpdateClassifier`) under each
collector ``archive_policy`` — ``full``, ``ring:N`` and ``mrt-spill``
— and records the results into ``BENCH_pipeline.json`` so the
memory/throughput trade-off of the streaming refactor is tracked from
PR to PR.

Beyond timing, the harness *asserts* the refactor's contract:

* **bounded memory** — under ``ring:N`` every collector retains at
  most N records; under ``mrt-spill`` it retains zero, while the
  all-time message count (and the live classifier) prove the full
  stream still flowed;
* **equivalence** — the live classifier's type counts are identical
  across all three policies (the archive backend cannot change what
  the analysis sees);
* **throughput** — bounded policies stay within
  ``--min-throughput-ratio`` (default 0.85) of the ``full`` policy's
  events/sec, so bounding memory is not a hidden slowdown.

Usage::

    python benchmarks/bench_pipeline.py            # tiny + medium
    python benchmarks/bench_pipeline.py --quick    # tiny only, 1 repeat
    python benchmarks/bench_pipeline.py --keep-spill DIR
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import resource
import sys
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.analysis.classify import TYPE_ORDER, UpdateClassifier  # noqa: E402
from repro.pipeline.stream import ObservationStream  # noqa: E402
from repro.scenarios import get_scenario  # noqa: E402
from repro.scenarios.engine import internet_config_from_spec  # noqa: E402
from repro.simulator.session import BGPSession  # noqa: E402
from repro.workloads import InternetModel  # noqa: E402

LADDER = ("topology-tiny", "topology-medium", "topology-large")
DEFAULT_SCENARIOS = ("topology-tiny", "topology-medium")
POLICIES = ("full", "ring:1024", "mrt-spill")


def peak_rss_kb() -> int:
    """Process peak RSS in KiB (monotonic; recorded for context)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def run_once(scenario: str, policy: str, *, spill_dir=None) -> dict:
    """One measured simulation with a live classification sink."""
    config = internet_config_from_spec(get_scenario(scenario))
    config.archive_policy = policy
    config.spill_dir = spill_dir
    BGPSession._counter = 0
    model = InternetModel(config)
    classifier = UpdateClassifier()
    stream = ObservationStream(classifier)
    model.attach_collector_sink(stream)
    started = time.perf_counter()
    day = model.run()
    elapsed = time.perf_counter() - started
    delivered = sum(
        router.received_updates for router in day.network.routers.values()
    ) + day.total_collected_messages()
    collectors = day.collectors()
    retained = {c.name: len(c.records) for c in collectors}
    spill_paths = [c.spill_path for c in collectors if c.spill_path]
    # Hash whatever full-fidelity export exists so policies are
    # provably archiving the same stream (ring archives are partial by
    # design and are excluded).
    archive_hash = None
    if policy != "ring:1024" and not policy.startswith("ring"):
        digest = hashlib.sha256()
        for collector in collectors:
            digest.update(collector.name.encode("utf-8"))
            digest.update(collector.dump_mrt())
        archive_hash = digest.hexdigest()[:16]
    for collector in collectors:
        collector.close()
    return {
        "scenario": scenario,
        "archive_policy": policy,
        "elapsed_seconds": round(elapsed, 4),
        "messages_delivered": delivered,
        "events_per_sec": round(delivered / elapsed, 1) if elapsed else 0.0,
        "observations_streamed": stream.observations_emitted,
        "classified_types": {
            kind.value: classifier.counts.counts[kind]
            for kind in TYPE_ORDER
        },
        "collector_messages": day.total_collected_messages(),
        "retained_records": retained,
        "retained_total": sum(retained.values()),
        "archive_hash": archive_hash,
        "peak_rss_kb": peak_rss_kb(),
        "spill_paths": spill_paths,
    }


def run_best_of(scenario, policy, repeat, *, spill_dir=None) -> dict:
    """Best of *repeat* runs; spill files are unlinked per run unless
    the caller asked to keep them (every repeat writes fresh ones)."""
    best = None
    for _ in range(max(1, repeat)):
        result = run_once(scenario, policy, spill_dir=spill_dir)
        if spill_dir is None:
            for path in result["spill_paths"]:
                try:
                    os.unlink(path)
                except OSError:
                    pass
            result["spill_paths"] = []
        if best is None or result["events_per_sec"] > best["events_per_sec"]:
            best = result
    return best


def check_contract(
    scenario: str,
    by_policy: "dict[str, dict]",
    min_ratio: float,
    min_measured_seconds: float,
):
    """Assert bounded memory, equivalence and throughput; raises SystemExit.

    The throughput floor only applies to rungs whose full-policy run
    lasts at least *min_measured_seconds*: on sub-second rungs the
    events/sec ratio measures constant setup costs (spill-file
    creation, cache warm-up), not the streaming hot path.  The memory
    and equivalence contracts are asserted unconditionally.
    """
    full = by_policy["full"]
    check_throughput = full["elapsed_seconds"] >= min_measured_seconds
    problems = []
    for policy, result in by_policy.items():
        if result["classified_types"] != full["classified_types"]:
            problems.append(
                f"{scenario}/{policy}: live classification diverged from"
                f" the full policy"
            )
        if result["collector_messages"] != full["collector_messages"]:
            problems.append(
                f"{scenario}/{policy}: collector message count diverged"
            )
        if policy.startswith("ring:"):
            capacity = int(policy.split(":", 1)[1])
            worst = max(result["retained_records"].values() or [0])
            if worst > capacity:
                problems.append(
                    f"{scenario}/{policy}: retained {worst} > capacity"
                    f" {capacity} (memory not bounded)"
                )
        if policy == "mrt-spill":
            if result["retained_total"] != 0:
                problems.append(
                    f"{scenario}/mrt-spill: retained"
                    f" {result['retained_total']} records in memory"
                )
            if result["archive_hash"] != full["archive_hash"]:
                problems.append(
                    f"{scenario}/mrt-spill: spilled archive hash"
                    f" {result['archive_hash']} != full"
                    f" {full['archive_hash']}"
                )
        if (
            check_throughput
            and policy != "full"
            and full["events_per_sec"]
        ):
            ratio = result["events_per_sec"] / full["events_per_sec"]
            if ratio < min_ratio:
                problems.append(
                    f"{scenario}/{policy}: {ratio:.2f}x of full-policy"
                    f" throughput (floor {min_ratio})"
                )
    if problems:
        raise SystemExit(
            "pipeline contract violated:\n  " + "\n  ".join(problems)
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the streaming observation pipeline."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: smallest ladder rung only, one repeat",
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        help=f"comma-separated scenario names (default:"
        f" {','.join(DEFAULT_SCENARIOS)}; ladder: {','.join(LADDER)})",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="runs per scenario x policy; the best is recorded",
    )
    parser.add_argument(
        "--min-throughput-ratio",
        type=float,
        default=0.9,
        help="bounded policies must reach this fraction of the full"
        " policy's events/sec (default 0.9, i.e. at most ~10%%"
        " regression)",
    )
    parser.add_argument(
        "--min-measured-seconds",
        type=float,
        default=1.0,
        help="apply the throughput floor only to rungs whose"
        " full-policy run lasts at least this long (default 1.0)",
    )
    parser.add_argument(
        "--keep-spill",
        default=None,
        metavar="DIR",
        help="write mrt-spill archives into DIR and keep them"
        " (default: system temp, deleted)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..",
            "BENCH_pipeline.json",
        ),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    if args.scenarios:
        scenarios = tuple(
            name.strip() for name in args.scenarios.split(",") if name.strip()
        )
    elif args.quick:
        scenarios = (LADDER[0],)
    else:
        scenarios = DEFAULT_SCENARIOS
    repeat = 1 if args.quick else args.repeat

    runs = []
    for scenario in scenarios:
        by_policy = {}
        for policy in POLICIES:
            result = run_best_of(
                scenario, policy, repeat, spill_dir=args.keep_spill
            )
            by_policy[policy] = result
            runs.append(result)
            print(
                f"{scenario} [{policy}]:"
                f" {result['events_per_sec']:,.0f} events/s,"
                f" {result['observations_streamed']} observations"
                f" streamed, retained {result['retained_total']}"
                f" records, hash {result['archive_hash'] or '-'}"
            )
        check_contract(
            scenario,
            by_policy,
            args.min_throughput_ratio,
            args.min_measured_seconds,
        )
        full_rate = by_policy["full"]["events_per_sec"]
        for policy in POLICIES[1:]:
            ratio = (
                by_policy[policy]["events_per_sec"] / full_rate
                if full_rate
                else 0.0
            )
            print(f"  {policy}: {ratio:.2f}x of full-policy throughput")

    report = {
        "version": 1,
        "quick": bool(args.quick),
        "repeat": repeat,
        "min_throughput_ratio": args.min_throughput_ratio,
        "runs": runs,
    }

    # Merge with any existing report: keep the recorded baseline block
    # and entries for (scenario, policy) pairs not re-run this time.
    if os.path.exists(args.output):
        try:
            with open(args.output, "r", encoding="utf-8") as handle:
                previous_report = json.load(handle)
        except (OSError, ValueError):
            previous_report = {}
        if "baseline" in previous_report:
            report["baseline"] = previous_report["baseline"]
        fresh = {(run["scenario"], run["archive_policy"]) for run in runs}
        kept = [
            run
            for run in previous_report.get("runs", [])
            if (run.get("scenario"), run.get("archive_policy")) not in fresh
        ]
        report["runs"] = sorted(
            kept + runs,
            key=lambda run: (
                run.get("scenario", ""),
                POLICIES.index(run["archive_policy"])
                if run.get("archive_policy") in POLICIES
                else 99,
            ),
        )

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.abspath(args.output)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
