"""Bench T2: announcement-type shares (Table 2).

Prints the six type shares for the full feed and the beacon subset,
paper-vs-measured.  The shape assertions encode the paper's findings:

* `pc` is the largest type in both feeds;
* `nc`+`nn` (no path change) are a large fraction (~half) of the full
  feed — the paper's headline Finding 1;
* the beacon subset skews toward `pc`/`pn` relative to the full feed;
* prepending types stay ≈1%.
"""

from repro.analysis import AnnouncementType, build_table2
from repro.reports import format_share, render_table

#: Paper Table 2 shares (full feed, beacon subset).
PAPER_TABLE2 = {
    "pc": (0.337, 0.446),
    "pn": (0.151, 0.299),
    "nc": (0.245, 0.138),
    "nn": (0.257, 0.112),
    "xc": (0.003, 0.002),
    "xn": (0.007, 0.003),
}


def test_bench_table2(benchmark, mar20_observations, beacon_prefixes):
    table = benchmark(
        build_table2, mar20_observations, beacon_prefixes
    )
    rows = []
    for code, description, full, beacon in table.as_rows():
        paper_full, paper_beacon = PAPER_TABLE2[code]
        rows.append(
            (
                code,
                description,
                format_share(paper_full),
                format_share(full),
                format_share(paper_beacon),
                format_share(beacon),
            )
        )
    print()
    print(
        render_table(
            (
                "type",
                "observed changes",
                "paper d_mar20",
                "measured",
                "paper d_beacon",
                "measured",
            ),
            rows,
            title="Table 2: announcement types",
        )
    )
    full = table.full
    beacon = table.beacon
    # pc wins in both feeds.
    assert full.share(AnnouncementType.PC) == max(full.shares().values())
    assert beacon.share(AnnouncementType.PC) == max(
        beacon.shares().values()
    )
    # No-path-change mass is large in the full feed...
    assert full.no_path_change_share() > 0.35
    # ...and smaller in the controlled beacon subset.
    assert beacon.no_path_change_share() < full.no_path_change_share()
    # Prepending stays marginal.
    prepend = full.share(AnnouncementType.XC) + full.share(
        AnnouncementType.XN
    )
    assert prepend < 0.03
