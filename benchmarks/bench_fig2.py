"""Bench F2: daily announcements per type, 2010-2020 (Figure 2).

Simulates one sampled day per year with the growth model and prints the
per-type counts.  The paper's qualitative findings:

* absolute daily counts grow substantially over the decade;
* `pc` and `nn` are historically the most dominant types;
* type *shares* stay relatively stable despite growth.
"""

from repro.analysis import AnnouncementType
from repro.analysis.classify import TYPE_ORDER
from repro.reports import render_stacked_counts


def test_bench_fig2_longitudinal_types(benchmark, longitudinal_series):
    series = benchmark(longitudinal_series.type_series)
    labels = [snapshot.label for snapshot in longitudinal_series]
    stacks = {
        kind.value: [count for _, count in series[kind]]
        for kind in TYPE_ORDER
    }
    print()
    print(
        render_stacked_counts(
            labels,
            stacks,
            title="Figure 2: daily announcements per type (2010-2020)",
        )
    )
    snapshots = longitudinal_series.snapshots
    first, last = snapshots[0], snapshots[-1]
    # Growth: the 2020 day carries several times the 2010 messages.
    assert (
        last.type_counts.classified_total
        > 2 * first.type_counts.classified_total
    )
    # "Most notable are the types pc and nn [...] they are
    # historically the most dominant of all types": pc and nn must
    # both rank in the top three at the end of the decade.
    last_shares = last.type_counts.shares()
    top3 = sorted(last_shares, key=last_shares.get, reverse=True)[:3]
    assert AnnouncementType.PC in top3
    assert AnnouncementType.NN in top3
    # Share stability: nc+nn stays within a band across the decade
    # (the paper: "despite increased community usage, the share of all
    # types is relatively stable").
    no_path_shares = [
        snap.type_counts.no_path_change_share()
        for snap in snapshots
        if snap.type_counts.classified_total > 100
    ]
    assert max(no_path_shares) - min(no_path_shares) < 0.45
