"""Bench F4: community exploration on a single stream (Figure 4).

The paper plots the cumulative announcements for beacon prefix
84.205.64.0/24 via AS path (20205 3356 174 12654): every announcement
falls inside withdrawal phases, each phase opening with a `pc` and
continuing with `nc` announcements whose communities encode different
ingress locations ("community exploration").

We select the beacon stream with the strongest nc activity at a
non-cleaning peer and print its cumulative series plus the detected
exploration bursts.
"""

from repro.analysis import (
    AnnouncementType,
    CommunityExplorationDetector,
    group_into_streams,
)
from repro.analysis.exploration import stream_phase_activity
from repro.beacons import BeaconSchedule, PhaseKind
from repro.netbase.timebase import format_utc
from repro.reports import render_table


def _beacon_streams(day, observations):
    beacons = set(day.beacon_prefixes)
    return group_into_streams(
        obs for obs in observations if obs.prefix in beacons
    )


def _pick_stream(streams, kind):
    """The stream with the most announcements of *kind*."""
    best_key, best_count = None, -1
    for key, stream in streams.items():
        counts = stream_phase_activity(stream).type_counts()
        if counts[kind] > best_count:
            best_key, best_count = key, counts[kind]
    return best_key


def test_bench_fig4_community_exploration(
    benchmark, mar20_day, mar20_observations
):
    streams = _beacon_streams(mar20_day, mar20_observations)
    key = _pick_stream(streams, AnnouncementType.NC)
    assert key is not None
    activity = benchmark.pedantic(
        stream_phase_activity, args=(streams[key],), rounds=1, iterations=1
    )
    session, prefix = key
    rows = [
        (format_utc(when), kind.value)
        for when, kind in activity.events
    ]
    print()
    print(
        render_table(
            ("time", "type"),
            rows[:40],
            title=(
                f"Figure 4: announcements over time, beacon {prefix},"
                f" session AS{session.peer_asn} (nc = community"
                " exploration)"
            ),
        )
    )
    counts = activity.type_counts()
    assert counts[AnnouncementType.NC] >= 2, "no community exploration"
    # The nc announcements concentrate in withdrawal phases, like the
    # paper's "all announcements show up only during the withdrawal
    # phases".
    schedule = BeaconSchedule()
    nc_events = [
        when
        for when, kind in activity.events
        if kind == AnnouncementType.NC
    ]
    in_withdraw = sum(
        1
        for when in nc_events
        if schedule.classify(when) == PhaseKind.WITHDRAW
    )
    assert in_withdraw / len(nc_events) > 0.5
    # Exploration bursts with distinct community attributes exist.
    events = CommunityExplorationDetector().detect({key: streams[key]})
    assert any(
        event.is_community_exploration and event.distinct_communities >= 2
        for event in events
    )
