#!/usr/bin/env python
"""Read-path benchmark: MRT decode -> wire parse -> classification.

The write side (simulator core) is guarded by ``bench_core.py``; this
harness guards the *read* side — the path a month of RouteViews /
RIPE RIS archives takes through :class:`~repro.mrt.reader.MRTReader`,
:func:`~repro.bgp.wire.decode_message_from` and
:class:`~repro.analysis.classify.UpdateClassifier`.

A spilled MRT archive is generated with the existing ``mrt-spill``
collector policy, amplified by concatenation (MRT records are
self-framing, so N copies of an archive are one N-times-longer
archive), and then measured three ways:

* ``decode_only_records_per_sec`` — raw ``MRTReader`` iteration;
* ``decode_classify_obs_per_sec`` — ``replay_mrt`` into a live
  ``UpdateClassifier`` (the paper's §5 pipeline);
* ``scenario_obs_per_sec`` — the full ``mrt-replay`` scenario with its
  metric collectors, through ``run_scenario``.

Every run also *verifies* the fast path in the style of
``bench_core.py --verify``: the archive is decoded twice — decode
memo caches on and off — and the classification counts, record counts
and a fingerprint over every re-encoded record must be bit-identical,
proving the interning caches are a pure optimization.

Since the parallel sharded decode landed, every run additionally
verifies the sharded path: classifier state + reader stats must
fingerprint identically to the serial pass at every requested worker
count with zero ``mrt.shard.fallback`` ticks, and a worker-count
scaling curve (``parallel_decode_classify_obs_per_sec``) is recorded
next to the serial rates, together with the box's ``cpu_count`` so a
flat curve on a small machine reads as hardware, not regression.

Usage::

    python benchmarks/bench_analysis.py            # both rungs, repeat 3
    python benchmarks/bench_analysis.py --quick    # smallest rung, 1 repeat
    python benchmarks/bench_analysis.py --verify   # correctness only
    python benchmarks/bench_analysis.py --min-throughput-ratio 1.0

``--min-throughput-ratio R`` fails the run unless the measured
decode+classify rate reaches ``R x`` the recorded pre-overhaul
baseline in ``BENCH_analysis.json`` (CI runs the quick rung this way,
with ``--workers 2`` pinning the sharded-vs-serial verify).
``--verify`` runs only the equivalence checks — fast-vs-naive and
sharded-vs-serial at every ``--workers`` count — and writes nothing.

The amplified archives are cached under ``--archive-cache`` (default:
a ``repro-bench-archives`` dir in the system temp dir), keyed by
(spill scenario spec hash, amplification factor) and validated by
size+sha256 on every hit, so repeated quick runs stop paying the
spill cost; ``--refresh-archives`` forces regeneration.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import struct
import sys
import tempfile
import time
from dataclasses import replace

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.analysis.classify import TYPE_ORDER, UpdateClassifier  # noqa: E402
from repro.bgp import wire  # noqa: E402
from repro.bgp.wire import encode_message  # noqa: E402
from repro.mrt import records as mrt_records  # noqa: E402
from repro.mrt.reader import MRTReader  # noqa: E402
from repro.netbase import prefix as prefix_module  # noqa: E402
from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.pipeline.parallel import FALLBACK_COUNTER  # noqa: E402
from repro.pipeline.stream import replay_mrt  # noqa: E402
from repro.scenarios import get_scenario, run_scenario, spec_hash  # noqa: E402
from repro.simulator.session import BGPSession  # noqa: E402

#: config name -> (spill scenario, amplification factor).
CONFIGS = {
    "small-x8": ("internet-small-spill", 8),
    "small-x32": ("internet-small-spill", 32),
}
DEFAULT_SCENARIOS = ("small-x8", "small-x32")
QUICK_SCENARIOS = ("small-x8",)
DEFAULT_WORKER_COUNTS = (1, 2, 4, 8)
QUICK_WORKER_COUNTS = (2,)


def default_archive_cache() -> str:
    """Shared cache dir for amplified bench archives."""
    return os.path.join(tempfile.gettempdir(), "repro-bench-archives")


def set_fast_decode(enabled: bool) -> None:
    """Toggle every read-path memo cache as one unit."""
    wire.set_decode_memo(enabled)
    prefix_module.set_nlri_memo(enabled)
    mrt_records.set_address_memo(enabled)


def _sha256_file(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _cached_archive(cache_dir: str, config: str) -> "tuple[str, str]":
    """(archive path, sidecar path) for *config* in the cache dir.

    The key covers the spill scenario's spec hash and the amplification
    factor — the two inputs that determine the archive bytes — so a
    scenario-spec change naturally misses the cache.
    """
    scenario, amplify = CONFIGS[config]
    key = f"{scenario}-{spec_hash(get_scenario(scenario))}-x{amplify}"
    base = os.path.join(cache_dir, key + ".mrt")
    return base, base + ".json"


def build_archive(
    config: str,
    keep_dir: "str | None",
    cache_dir: "str | None" = None,
    refresh: bool = False,
) -> "tuple[str, bool]":
    """Produce the spilled+amplified archive for *config*.

    Returns ``(path, cleanup)`` where *cleanup* tells the caller the
    path is a throwaway tempfile it owns.  Cached archives (keyed by
    spill-spec hash + amplification, validated by size and sha256) and
    ``keep_dir`` archives are never cleanup targets.
    """
    scenario, amplify = CONFIGS[config]
    cached = sidecar = None
    if keep_dir is None and cache_dir is not None:
        cached, sidecar = _cached_archive(cache_dir, config)
        if not refresh and os.path.exists(cached) and os.path.exists(sidecar):
            try:
                with open(sidecar, "r", encoding="utf-8") as handle:
                    entry = json.load(handle)
            except (OSError, ValueError):
                entry = None
            if (
                entry
                and os.path.getsize(cached) == entry.get("bytes")
                and _sha256_file(cached) == entry.get("sha256")
            ):
                print(f"{config}: reusing cached archive {cached}")
                return cached, False
    BGPSession._counter = 0
    result = run_scenario(get_scenario(scenario))
    spill_paths = list(result.spill_paths.values())
    if not spill_paths:
        raise SystemExit(
            f"scenario {scenario!r} spilled no archive; it must use"
            f" archive_policy=mrt-spill"
        )
    with open(spill_paths[0], "rb") as handle:
        blob = handle.read()
    for path in spill_paths:
        os.unlink(path)
    out_dir = keep_dir
    if cached is not None:
        os.makedirs(cache_dir, exist_ok=True)
        out_dir = cache_dir
    handle, out_path = tempfile.mkstemp(
        prefix=f"bench-analysis-{config}-", suffix=".mrt", dir=out_dir
    )
    with os.fdopen(handle, "wb") as out:
        for _ in range(amplify):
            out.write(blob)
    if cached is not None:
        os.replace(out_path, cached)
        with open(sidecar, "w", encoding="utf-8") as out:
            json.dump(
                {
                    "scenario": scenario,
                    "amplify": amplify,
                    "bytes": os.path.getsize(cached),
                    "sha256": _sha256_file(cached),
                },
                out,
                indent=2,
                sort_keys=True,
            )
            out.write("\n")
        return cached, False
    return out_path, keep_dir is None


def archive_fingerprint(path: str) -> "tuple[str, int, dict]":
    """(sha256-16 over every re-encoded record, count, type counts).

    The fingerprint covers the decoded *values* — envelope fields and
    the re-encoded BGP wire bytes — so two decode paths that produce
    it identically decoded every record bit-identically.
    """
    digest = hashlib.sha256()
    count = 0
    with open(path, "rb") as handle:
        reader = MRTReader(handle, tolerant=True)
        for record in reader:
            digest.update(
                struct.pack(
                    "!dII", record.timestamp, int(record.peer_asn),
                    int(record.local_asn),
                )
            )
            digest.update(record.peer_address.encode())
            digest.update(record.local_address.encode())
            digest.update(encode_message(record.message))
            count += 1
        digest.update(
            struct.pack("!II", reader.skipped_records, reader.error_records)
        )
    classifier = UpdateClassifier()
    replay_mrt(path, classifier, collector="bench")
    types = {
        kind.value: classifier.counts.counts[kind] for kind in TYPE_ORDER
    }
    return digest.hexdigest()[:16], count, types


def verify_fast_vs_naive(config: str, path: str) -> dict:
    """Decode the archive with memos on and off; require identity."""
    set_fast_decode(True)
    fast_print, fast_count, fast_types = archive_fingerprint(path)
    set_fast_decode(False)
    try:
        naive_print, naive_count, naive_types = archive_fingerprint(path)
    finally:
        set_fast_decode(True)
    match = (
        fast_print == naive_print
        and fast_count == naive_count
        and fast_types == naive_types
    )
    print(
        f"{config}: fast={fast_print} naive={naive_print}"
        f" ({fast_count} records) ->"
        f" {'IDENTICAL' if match else 'MISMATCH'}"
    )
    if not match:
        raise SystemExit(
            f"verification failure on {config}: the decode memo caches"
            f" changed output (fast {fast_print}/{fast_types} vs naive"
            f" {naive_print}/{naive_types})"
        )
    return {
        "archive_fingerprint": fast_print,
        "records": fast_count,
        "classified_types": fast_types,
    }


def classify_fingerprint(
    path: str, workers: "int | None" = None
) -> "tuple[str, int]":
    """(sha256-16 over classifier state + reader stats, fallback ticks).

    The fingerprint covers the full exported classifier state — every
    §5 type count, unclassified-first and withdrawal tallies — plus the
    reader's record/skip/error/observation totals, so a sharded run
    that matches the serial fingerprint decoded, classified and merged
    bit-identically.  Fallback ticks are read from the gated
    ``mrt.shard.fallback`` counter; a verified run must show zero.
    """
    classifier = UpdateClassifier()
    stats: dict = {}
    with obs_metrics.enabled_scope():
        obs_metrics.reset_metrics()
        replay_mrt(
            path, classifier, collector="bench", stats=stats, workers=workers
        )
        fallbacks = obs_metrics.registry().counter_value(FALLBACK_COUNTER)
    payload = json.dumps(
        {"state": classifier.export_state(), "stats": stats},
        sort_keys=True,
        separators=(",", ":"),
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16], fallbacks


def verify_sharded_vs_serial(
    config: str, path: str, worker_counts: "tuple[int, ...]"
) -> dict:
    """Require the sharded decode to match serial at every worker count."""
    serial_print, _ = classify_fingerprint(path)
    for workers in worker_counts:
        sharded_print, fallbacks = classify_fingerprint(path, workers=workers)
        match = sharded_print == serial_print and fallbacks == 0
        print(
            f"{config}: sharded workers={workers} {sharded_print}"
            f" vs serial {serial_print} ({fallbacks} fallback(s)) ->"
            f" {'IDENTICAL' if match else 'MISMATCH'}"
        )
        if not match:
            raise SystemExit(
                f"verification failure on {config}: sharded decode at"
                f" workers={workers} diverged from serial (sharded"
                f" {sharded_print} vs serial {serial_print},"
                f" {fallbacks} fallback(s))"
            )
    return {
        "sharded_fingerprint": serial_print,
        "sharded_verified_workers": [int(count) for count in worker_counts],
    }


def measure_parallel_classify(path: str, workers: int) -> "tuple[float, int]":
    classifier = UpdateClassifier()
    stats: dict = {}
    started = time.perf_counter()
    observations = replay_mrt(
        path, classifier, collector="bench", stats=stats, workers=workers
    )
    elapsed = time.perf_counter() - started
    return (observations / elapsed if elapsed else 0.0, observations)


def measure_decode_only(path: str) -> "tuple[float, int]":
    count = 0
    with open(path, "rb") as handle:
        started = time.perf_counter()
        for _record in MRTReader(handle, tolerant=True):
            count += 1
        elapsed = time.perf_counter() - started
    return (count / elapsed if elapsed else 0.0, count)


def measure_decode_classify(path: str) -> "tuple[float, int]":
    classifier = UpdateClassifier()
    started = time.perf_counter()
    observations = replay_mrt(path, classifier, collector="bench")
    elapsed = time.perf_counter() - started
    return (observations / elapsed if elapsed else 0.0, observations)


def measure_scenario(path: str) -> "tuple[float, int]":
    spec = get_scenario("mrt-replay")
    spec = replace(spec, mrt=replace(spec.mrt, path=path))
    started = time.perf_counter()
    result = run_scenario(spec)
    elapsed = time.perf_counter() - started
    observations = result.reader_stats.get("observations", 0)
    return (observations / elapsed if elapsed else 0.0, observations)


def best_rate(measure, path: str, repeat: int) -> "tuple[float, int]":
    best = (0.0, 0)
    for _ in range(max(1, repeat)):
        rate, count = measure(path)
        if rate > best[0]:
            best = (rate, count)
    return best


def run_config(
    config: str,
    repeat: int,
    keep_dir: "str | None",
    worker_counts: "tuple[int, ...]",
    cache_dir: "str | None",
    refresh: bool,
) -> dict:
    path, cleanup = build_archive(config, keep_dir, cache_dir, refresh)
    archive_bytes = os.path.getsize(path)
    try:
        checks = verify_fast_vs_naive(config, path)
        checks.update(verify_sharded_vs_serial(config, path, worker_counts))
        decode_rate, records = best_rate(measure_decode_only, path, repeat)
        classify_rate, observations = best_rate(
            measure_decode_classify, path, repeat
        )
        scenario_rate, _ = best_rate(measure_scenario, path, repeat)
        curve = {}
        for workers in worker_counts:
            rate, _ = best_rate(
                lambda p, w=workers: measure_parallel_classify(p, w),
                path,
                repeat,
            )
            curve[str(workers)] = round(rate, 1)
    finally:
        if cleanup:
            try:
                os.unlink(path)
            except OSError:
                pass
    result = {
        "scenario": config,
        "archive_bytes": archive_bytes,
        "records": records,
        "observations": observations,
        "decode_only_records_per_sec": round(decode_rate, 1),
        "decode_classify_obs_per_sec": round(classify_rate, 1),
        "scenario_obs_per_sec": round(scenario_rate, 1),
        "parallel_decode_classify_obs_per_sec": curve,
        "cpu_count": os.cpu_count(),
    }
    result.update(checks)
    curve_text = ", ".join(
        f"{workers}w {rate:,.0f}" for workers, rate in curve.items()
    )
    print(
        f"{config}: decode {decode_rate:,.0f} rec/s,"
        f" decode+classify {classify_rate:,.0f} obs/s,"
        f" scenario {scenario_rate:,.0f} obs/s,"
        f" parallel [{curve_text}] obs/s"
        f" ({records} records)"
    )
    return result


def check_throughput_floor(runs, baseline: dict, min_ratio: float) -> None:
    """Fail unless decode+classify clears min_ratio x the baseline."""
    recorded = baseline.get("decode_classify_obs_per_sec", {})
    problems = []
    for run in runs:
        before = recorded.get(run["scenario"])
        if not before:
            continue
        ratio = run["decode_classify_obs_per_sec"] / before
        print(
            f"{run['scenario']}: {ratio:.2f}x the recorded pre-overhaul"
            f" baseline ({before:,.0f} obs/s)"
        )
        if ratio < min_ratio:
            problems.append(
                f"{run['scenario']}:"
                f" {run['decode_classify_obs_per_sec']:,.0f} obs/s is"
                f" {ratio:.2f}x baseline {before:,.0f} (floor"
                f" {min_ratio})"
            )
    if problems:
        raise SystemExit(
            "read-path throughput floor violated:\n  "
            + "\n  ".join(problems)
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the MRT decode -> classify read path."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: smallest archive only, one repeat",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="equivalence checks only (fast-vs-naive and"
        " sharded-vs-serial); no timing, no report written",
    )
    parser.add_argument(
        "--workers",
        default=None,
        metavar="CSV",
        help=f"comma-separated worker counts for the sharded verify and"
        f" scaling curve (default:"
        f" {','.join(str(count) for count in DEFAULT_WORKER_COUNTS)};"
        f" quick default:"
        f" {','.join(str(count) for count in QUICK_WORKER_COUNTS)})",
    )
    parser.add_argument(
        "--archive-cache",
        default=default_archive_cache(),
        metavar="DIR",
        help="cache amplified archives in DIR, keyed by spill-spec hash"
        " and amplification (default: repro-bench-archives under the"
        " system temp dir)",
    )
    parser.add_argument(
        "--no-archive-cache",
        action="store_true",
        help="always rebuild archives in throwaway tempfiles",
    )
    parser.add_argument(
        "--refresh-archives",
        action="store_true",
        help="rebuild cached archives even on a cache hit",
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        help=f"comma-separated config names (default:"
        f" {','.join(DEFAULT_SCENARIOS)}; known: {','.join(CONFIGS)})",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="measured runs per stage; the best is recorded (default 3)",
    )
    parser.add_argument(
        "--min-throughput-ratio",
        type=float,
        default=None,
        help="fail unless decode+classify reaches this fraction of the"
        " recorded baseline (CI uses 1.0; default: report only)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="read the recorded baseline block from FILE instead of"
        " --output (CI points this at the tracked"
        " BENCH_analysis.json while writing to a scratch output)",
    )
    parser.add_argument(
        "--keep-archive",
        default=None,
        metavar="DIR",
        help="write the amplified archives into DIR and keep them",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..",
            "BENCH_analysis.json",
        ),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    if args.scenarios:
        scenarios = tuple(
            name.strip() for name in args.scenarios.split(",") if name.strip()
        )
        unknown = [name for name in scenarios if name not in CONFIGS]
        if unknown:
            parser.error(f"unknown config(s): {', '.join(unknown)}")
    elif args.quick:
        scenarios = QUICK_SCENARIOS
    else:
        scenarios = DEFAULT_SCENARIOS
    repeat = 1 if args.quick else args.repeat

    if args.workers:
        try:
            worker_counts = tuple(
                int(part.strip())
                for part in args.workers.split(",")
                if part.strip()
            )
        except ValueError:
            parser.error(f"--workers must be a CSV of integers, got"
                         f" {args.workers!r}")
        if not worker_counts or any(count < 1 for count in worker_counts):
            parser.error("--workers counts must be integers >= 1")
    elif args.quick:
        worker_counts = QUICK_WORKER_COUNTS
    else:
        worker_counts = DEFAULT_WORKER_COUNTS
    cache_dir = None if args.no_archive_cache else args.archive_cache

    if args.verify:
        for config in scenarios:
            path, cleanup = build_archive(
                config, args.keep_archive, cache_dir, args.refresh_archives
            )
            try:
                verify_fast_vs_naive(config, path)
                verify_sharded_vs_serial(config, path, worker_counts)
            finally:
                if cleanup:
                    try:
                        os.unlink(path)
                    except OSError:
                        pass
        print("verification passed; no report written")
        return 0

    runs = [
        run_config(
            config, repeat, args.keep_archive, worker_counts, cache_dir,
            args.refresh_archives,
        )
        for config in scenarios
    ]

    report = {
        "version": 1,
        "quick": bool(args.quick),
        "repeat": repeat,
        "runs": runs,
    }

    # Merge with any existing report: keep the recorded baseline block
    # and entries for configs not re-run this time, so a --quick smoke
    # run never erases the full numbers.
    baseline = {}
    if os.path.exists(args.output):
        try:
            with open(args.output, "r", encoding="utf-8") as handle:
                previous_report = json.load(handle)
        except (OSError, ValueError):
            previous_report = {}
        baseline = previous_report.get("baseline", {})
        fresh = {run["scenario"] for run in runs}
        kept = [
            run
            for run in previous_report.get("runs", [])
            if run.get("scenario") not in fresh
        ]
        report["runs"] = sorted(
            kept + runs, key=lambda run: run.get("scenario", "")
        )

    if args.baseline:
        try:
            with open(args.baseline, "r", encoding="utf-8") as handle:
                baseline = json.load(handle).get("baseline", {})
        except (OSError, ValueError) as exc:
            raise SystemExit(
                f"cannot read baseline from {args.baseline!r}: {exc}"
            )
    if baseline:
        report["baseline"] = baseline
        speedups = {}
        recorded = baseline.get("decode_classify_obs_per_sec", {})
        for run in runs:
            before = recorded.get(run["scenario"])
            if before:
                speedups[run["scenario"]] = round(
                    run["decode_classify_obs_per_sec"] / before, 2
                )
        if speedups:
            report["speedup_vs_baseline"] = speedups

    if args.min_throughput_ratio is not None:
        check_throughput_floor(runs, baseline, args.min_throughput_ratio)

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.abspath(args.output)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
