"""Shared fixtures for the benchmark harness.

Heavy simulations run once per session; benchmarks then time the
analysis stages and print the paper-shaped artifacts (tables/series).
The *d_mar20*-like day uses the calibrated default configuration from
:class:`repro.workloads.InternetConfig`.
"""

from __future__ import annotations

import pytest

from repro.analysis import observations_from_collector
from repro.workloads import (
    GrowthModel,
    InternetConfig,
    InternetModel,
    LongitudinalRunner,
    sampled_days,
)


@pytest.fixture(scope="session")
def mar20_day():
    """One simulated 2020-03-15 at the calibrated default scale."""
    return InternetModel(InternetConfig.mar20()).run()


@pytest.fixture(scope="session")
def mar20_observations(mar20_day):
    """All observations across collectors, in arrival order."""
    merged = []
    for collector in mar20_day.collectors():
        merged.extend(observations_from_collector(collector))
    merged.sort(key=lambda obs: obs.timestamp)
    return merged


@pytest.fixture(scope="session")
def beacon_prefixes(mar20_day):
    """The day's beacon prefix set."""
    return set(mar20_day.beacon_prefixes)


@pytest.fixture(scope="session")
def longitudinal_series():
    """One sampled day per year, 2010-2020 (Figures 2 and 6)."""
    runner = LongitudinalRunner(
        growth=GrowthModel(), days=sampled_days(2010, 2020, per_year=1)
    )
    return runner.run()
