"""Bench T1: the Table 1 dataset overview (*d_mar20*).

Prints paper-vs-measured side by side.  Absolute magnitudes differ by
the documented scale factor (the simulated internet is ~10^3 smaller);
the structural relations the paper's table exhibits must hold:

* IPv4 prefixes outnumber IPv6 prefixes,
* most announcements carry communities (737M / 1008M ≈ 73%),
* announcements vastly outnumber withdrawals,
* sessions ≥ peers.
"""

from repro.analysis import build_table1
from repro.reports import render_table

#: The paper's Table 1 for reference output.
PAPER_TABLE1 = {
    "IPv4 prefixes": 1_071_150,
    "IPv6 prefixes": 99_141,
    "ASes": 68_911,
    "Sessions": 1_504,
    "Peers": 581,
    "Announcements": 1_008_000_000,
    "w/ communities": 737_000_000,
    "uniq. 16 bits": 5_778,
    "uniq. AS paths": 43_900_000,
    "Withdrawals": 38_500_000,
}


def test_bench_table1(benchmark, mar20_observations):
    table = benchmark(build_table1, mar20_observations)
    rows = [
        (label, f"{PAPER_TABLE1[label]:,}", value)
        for label, value in table.as_rows()
    ]
    print()
    print(
        render_table(
            ("metric", "paper (d_mar20)", "measured (simulated)"),
            rows,
            title="Table 1: dataset overview",
        )
    )
    assert table.ipv4_prefixes > table.ipv6_prefixes > 0
    assert table.announcements > table.withdrawals
    assert table.with_communities / table.announcements > 0.5
    assert table.sessions >= table.peers
    assert table.unique_as_paths > 0
    assert table.unique_16bit_communities > 0
