"""Ablation A3: MRAI pacing vs update volume.

The paper notes MRAI timers "have been explored, but may offer
suboptimal performance" and are selectively deployed; the lab runs use
no pacing so every generated message is observable.  This ablation
sweeps the per-session MRAI on the small internet — expressed as three
declarative variants of the ``internet-small`` scenario run through
the engine in one sweep — and reports the collected message volume:
pacing batches implicit withdrawals during path exploration, so volume
should not increase with MRAI.
"""

from dataclasses import replace

from repro.reports import render_table
from repro.scenarios import get_scenario, run_sweep

MRAI_VALUES = (0.0, 5.0, 30.0)


def mrai_specs():
    base = get_scenario("internet-small")
    return [
        replace(
            base,
            name=f"internet-small@mrai{mrai:.0f}",
            internet=replace(base.internet, mrai=mrai),
        )
        for mrai in MRAI_VALUES
    ]


def test_bench_ablation_mrai(benchmark):
    def sweep():
        report = run_sweep(mrai_specs(), workers=1)
        # The zip below pairs results with MRAI values positionally;
        # a silently dropped (failed) cell would misattribute every
        # later result, so insist on the all-or-nothing contract.
        report.raise_failures()
        return {
            mrai: result.metrics["update_counts"]["observations"]
            for mrai, result in zip(MRAI_VALUES, report.results)
        }

    volumes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (f"{mrai:.0f}s", volume) for mrai, volume in volumes.items()
    ]
    print()
    print(
        render_table(
            ("MRAI", "collected observations"),
            rows,
            title="Ablation A3: MRAI pacing vs message volume",
        )
    )
    assert volumes[0.0] > 0
    # Pacing can only merge messages, never multiply them: allow a
    # small tolerance for timing-dependent exploration differences.
    assert volumes[30.0] <= volumes[0.0] * 1.15
