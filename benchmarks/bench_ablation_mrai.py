"""Ablation A3: MRAI pacing vs update volume.

The paper notes MRAI timers "have been explored, but may offer
suboptimal performance" and are selectively deployed; the lab runs use
no pacing so every generated message is observable.  This ablation
sweeps the per-session MRAI on the small internet and reports the
collected message volume: pacing batches implicit withdrawals during
path exploration, so volume should not increase with MRAI.
"""

from repro.reports import render_table
from repro.workloads import InternetConfig, InternetModel

MRAI_VALUES = (0.0, 5.0, 30.0)


def run_with_mrai(mrai):
    config = InternetConfig.small(mrai=mrai)
    day = InternetModel(config).run()
    return day.total_collected_messages()


def test_bench_ablation_mrai(benchmark):
    def sweep():
        return {mrai: run_with_mrai(mrai) for mrai in MRAI_VALUES}

    volumes = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = [
        (f"{mrai:.0f}s", volume) for mrai, volume in volumes.items()
    ]
    print()
    print(
        render_table(
            ("MRAI", "collected msgs"),
            rows,
            title="Ablation A3: MRAI pacing vs message volume",
        )
    )
    assert volumes[0.0] > 0
    # Pacing can only merge messages, never multiply them: allow a
    # small tolerance for timing-dependent exploration differences.
    assert volumes[30.0] <= volumes[0.0] * 1.15
