#!/usr/bin/env python
"""Instrumentation-overhead benchmark: metrics enabled vs disabled.

Runs the full scenario engine (``run_scenario``, not the raw model —
the phase spans, memo counters and report assembly all live on that
path) with the metrics registry off and on, interleaved, and asserts
that instrumentation costs at most ``--max-overhead`` (default 5%) of
end-to-end throughput.  The numbers land in ``BENCH_obs.json`` so the
"near-zero cost when disabled" contract is tracked from PR to PR.

Metrics per mode:

* ``elapsed_seconds`` — best (lowest) of ``--repeat`` runs, to damp
  OS noise; both modes are timed in the same process, alternating, so
  cache warmth is shared.
* ``observations_per_sec`` — scenario observations per wall-clock
  second.  The observation count comes from one instrumented pre-run
  (``scenario.observations``) and is identical across modes by the
  determinism contract, so the rates are directly comparable.
* ``payload_hash`` — sha256 over the result JSON (metrics report
  stripped).  Every run of every mode must agree: instrumentation
  that changes output bytes is a bug, not an overhead.

Usage::

    python benchmarks/bench_obs.py             # 5 interleaved repeats
    python benchmarks/bench_obs.py --quick     # 3 repeats
    python benchmarks/bench_obs.py --max-overhead 0.05
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.obs import metrics as obs_metrics  # noqa: E402
from repro.scenarios import (  # noqa: E402
    get_scenario,
    result_to_json,
    run_scenario,
)
from repro.simulator.session import BGPSession  # noqa: E402

DEFAULT_SCENARIO = "topology-tiny"


def run_once(scenario: str, *, enabled: bool) -> "tuple[float, str]":
    """One timed end-to-end run; returns (elapsed, payload hash)."""
    spec = get_scenario(scenario)
    # Pin the process-global session counter so every run produces
    # byte-identical output and the payload hashes are comparable.
    BGPSession._counter = 0
    previous = obs_metrics.set_metrics_enabled(enabled)
    try:
        started = time.perf_counter()
        result = run_scenario(spec)
        elapsed = time.perf_counter() - started
    finally:
        obs_metrics.set_metrics_enabled(previous)
        obs_metrics.reset_metrics()
    result.metrics_report = {}
    payload = result_to_json(result).encode("utf-8")
    return elapsed, hashlib.sha256(payload).hexdigest()[:16]


def count_observations(scenario: str) -> int:
    """One instrumented run just to learn the observation count."""
    spec = get_scenario(scenario)
    BGPSession._counter = 0
    previous = obs_metrics.set_metrics_enabled(True)
    try:
        result = run_scenario(spec)
    finally:
        obs_metrics.set_metrics_enabled(previous)
        obs_metrics.reset_metrics()
    return int(
        result.metrics_report.get("counters", {}).get(
            "scenario.observations", 0
        )
    )


def bench(scenario: str, repeat: int) -> dict:
    """Interleaved best-of-*repeat* for both modes on *scenario*."""
    observations = count_observations(scenario)
    best = {False: None, True: None}
    hashes = set()
    for _ in range(max(1, repeat)):
        # Alternate within each repeat so slow drift (thermal, other
        # tenants) hits both modes equally.
        for enabled in (False, True):
            elapsed, payload_hash = run_once(scenario, enabled=enabled)
            hashes.add(payload_hash)
            if best[enabled] is None or elapsed < best[enabled]:
                best[enabled] = elapsed
    if len(hashes) != 1:
        raise SystemExit(
            f"determinism violation: instrumentation changed the"
            f" result payload on {scenario} (hashes: {sorted(hashes)})"
        )
    disabled, enabled = best[False], best[True]
    overhead = (enabled / disabled) - 1.0 if disabled else 0.0
    return {
        "scenario": scenario,
        "observations": observations,
        "payload_hash": hashes.pop(),
        "disabled": {
            "elapsed_seconds": round(disabled, 4),
            "observations_per_sec": round(observations / disabled, 1)
            if disabled
            else 0.0,
        },
        "enabled": {
            "elapsed_seconds": round(enabled, 4),
            "observations_per_sec": round(observations / enabled, 1)
            if enabled
            else 0.0,
        },
        "overhead": round(overhead, 4),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark metrics-registry overhead."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: 3 interleaved repeats instead of 5",
    )
    parser.add_argument(
        "--scenario",
        default=DEFAULT_SCENARIO,
        help=f"scenario to run (default: {DEFAULT_SCENARIO})",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=5,
        help="interleaved runs per mode; the best is kept (default 5)",
    )
    parser.add_argument(
        "--max-overhead",
        type=float,
        default=0.05,
        help="fail if enabled mode is more than this fraction slower"
        " than disabled (default 0.05 = 5%%)",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..",
            "BENCH_obs.json",
        ),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)
    repeat = 3 if args.quick else args.repeat

    run = bench(args.scenario, repeat)
    print(
        f"{run['scenario']}: disabled"
        f" {run['disabled']['observations_per_sec']:,.0f} obs/s"
        f" ({run['disabled']['elapsed_seconds']:.3f}s), enabled"
        f" {run['enabled']['observations_per_sec']:,.0f} obs/s"
        f" ({run['enabled']['elapsed_seconds']:.3f}s),"
        f" overhead {run['overhead'] * 100:+.1f}%"
        f" (budget {args.max_overhead * 100:.0f}%),"
        f" hash {run['payload_hash']}"
    )

    report = {
        "version": 1,
        "quick": bool(args.quick),
        "repeat": repeat,
        "max_overhead": args.max_overhead,
        "runs": [run],
    }

    # Merge with any existing report: keep the recorded baseline block
    # and entries for scenarios this invocation did not re-run, so a
    # --quick smoke run never erases the tracked numbers.
    if os.path.exists(args.output):
        try:
            with open(args.output, "r", encoding="utf-8") as handle:
                previous_report = json.load(handle)
        except (OSError, ValueError):
            previous_report = {}
        if "baseline" in previous_report:
            report["baseline"] = previous_report["baseline"]
        kept = [
            entry
            for entry in previous_report.get("runs", [])
            if entry.get("scenario") != run["scenario"]
        ]
        report["runs"] = sorted(
            kept + [run], key=lambda entry: entry.get("scenario", "")
        )

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.abspath(args.output)}")

    if run["overhead"] > args.max_overhead:
        print(
            f"FAIL: instrumentation overhead {run['overhead'] * 100:.1f}%"
            f" exceeds the {args.max_overhead * 100:.0f}% budget",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
