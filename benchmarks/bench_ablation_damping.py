"""Ablation A5: would route-flap damping absorb community exploration?

The paper (§2) observes that damping and MRAI "may offer suboptimal
performance in reacting to routing events" and are selectively
deployed.  This trace-driven ablation replays the mar20-like collector
feed through an RFC 2439 damper as if every collector peer had damping
enabled, and reports how many announcements the damper would have
withheld — split by announcement type.

The interesting tension: damping suppresses a *large* share of the
spurious nc/nn traffic (beacon bursts trip the penalty quickly), but it
also withholds genuine pc/pn reachability changes — the paper's
"suboptimal performance in reacting to routing events".
"""

from repro.analysis import UpdateClassifier
from repro.analysis.classify import TYPE_ORDER, AnnouncementType
from repro.reports import format_share, render_table
from repro.simulator.damping import RouteDamper


def replay_with_damping(observations):
    """Replay a feed through a per-session damper.

    Returns ``(passed, suppressed)`` as per-type counters.
    """
    damper = RouteDamper()
    classifier = UpdateClassifier()
    passed = {kind: 0 for kind in AnnouncementType}
    suppressed = {kind: 0 for kind in AnnouncementType}
    for observation in observations:
        key = str(observation.session)
        announcement_type = classifier.observe(observation)
        if observation.is_withdrawal:
            damper.penalize(
                key,
                observation.prefix,
                observation.timestamp,
                is_withdrawal=True,
            )
            continue
        if announcement_type is None:
            continue
        if announcement_type != AnnouncementType.NN:
            # Attribute or path change: accrues penalty.
            damper.penalize(
                key,
                observation.prefix,
                observation.timestamp,
                is_withdrawal=False,
            )
        if damper.is_suppressed(
            key, observation.prefix, observation.timestamp
        ):
            suppressed[announcement_type] += 1
        else:
            passed[announcement_type] += 1
    return passed, suppressed, damper


def test_bench_ablation_damping(benchmark, mar20_observations):
    passed, suppressed, damper = benchmark.pedantic(
        replay_with_damping,
        args=(mar20_observations,),
        rounds=1,
        iterations=1,
    )
    rows = []
    for kind in TYPE_ORDER:
        total = passed[kind] + suppressed[kind]
        share = suppressed[kind] / total if total else 0.0
        rows.append(
            (kind.value, total, suppressed[kind], format_share(share))
        )
    print()
    print(
        render_table(
            ("type", "announcements", "damped", "damped share"),
            rows,
            title=(
                "Ablation A5: RFC 2439 damping replayed over the"
                " collector feed"
            ),
        )
    )
    print(
        f"suppress events: {damper.suppressions},"
        f" releases: {damper.releases}"
    )
    total_spurious = sum(
        passed[kind] + suppressed[kind]
        for kind in (AnnouncementType.NC, AnnouncementType.NN)
    )
    damped_spurious = suppressed[AnnouncementType.NC] + suppressed[
        AnnouncementType.NN
    ]
    assert damper.suppressions > 0
    # Damping absorbs a real share of the spurious traffic...
    assert damped_spurious / total_spurious > 0.10
    # ...but it also withholds genuine path changes (the cost side).
    assert (
        suppressed[AnnouncementType.PC] + suppressed[AnnouncementType.PN]
        > 0
    )
