"""Scenario engine throughput: parallel sweep vs sequential.

Times a 4-scenario sweep (the ``topology-tiny`` scenario over four
seeds) twice through the scenario runner: once pinned to a single
worker process and once with every available core.  On multi-core
hosts the parallel sweep should approach ``cores``-fold speed-up since
scenarios are independent CPU-bound simulations; the benchmark prints
both wall-clocks plus the ratio so regressions in the runner's process
fan-out show up as a shrinking speed-up.

Also demonstrates (and asserts) spec-hash caching: a re-run of the same
sweep against a warm cache must not simulate anything.
"""

import os

from repro.reports import render_table
from repro.scenarios import expand_seeds, get_scenario, run_sweep

SEEDS = (1, 2, 3, 4)


def sweep_specs():
    return expand_seeds(get_scenario("topology-tiny"), SEEDS)


def test_bench_scenario_sweep_parallelism(benchmark, tmp_path):
    all_cores = os.cpu_count() or 1

    def timed_sweeps():
        sequential = run_sweep(sweep_specs(), workers=1)
        parallel = run_sweep(sweep_specs(), workers=all_cores)
        cold = run_sweep(
            sweep_specs(),
            workers=all_cores,
            cache_dir=str(tmp_path / "cache"),
        )
        warm = run_sweep(
            sweep_specs(),
            workers=all_cores,
            cache_dir=str(tmp_path / "cache"),
        )
        return sequential, parallel, cold, warm

    sequential, parallel, cold, warm = benchmark.pedantic(
        timed_sweeps, rounds=1, iterations=1
    )
    speedup = (
        sequential.elapsed_seconds / parallel.elapsed_seconds
        if parallel.elapsed_seconds
        else 1.0
    )
    print()
    print(
        render_table(
            ("run", "workers", "cache", "wall-clock"),
            (
                ("sequential", 1, "off", f"{sequential.elapsed_seconds:.2f}s"),
                (
                    "parallel",
                    all_cores,
                    "off",
                    f"{parallel.elapsed_seconds:.2f}s",
                ),
                ("parallel", all_cores, "cold", f"{cold.elapsed_seconds:.2f}s"),
                ("parallel", all_cores, "warm", f"{warm.elapsed_seconds:.2f}s"),
            ),
            title=(
                f"Scenario sweep: {len(SEEDS)} seeds, 1 vs"
                f" {all_cores} core(s) (speed-up {speedup:.2f}x)"
            ),
        )
    )
    # Same seeds => identical results regardless of worker count.
    for left, right in zip(sequential.results, parallel.results):
        assert left.spec_hash == right.spec_hash
        assert left.metrics == right.metrics
    # The warm re-run is served entirely from the spec-hash cache.
    assert cold.cache_misses == len(SEEDS)
    assert warm.cache_hits == len(SEEDS)
    assert warm.cache_misses == 0
