"""Scenario engine throughput across execution backends.

Times the same 4-seed sweep (the ``topology-tiny`` scenario) through
every execution backend — ``serial``, ``threads``, ``processes``,
``queue`` — plus the ``processes`` backend against a cold and a warm
spec-hash cache.  Simulations are pure-Python CPU-bound work, so on
multi-core hosts ``processes`` should approach ``cores``-fold
speed-up over ``serial`` while ``threads`` stays near 1x (the GIL
serializes it; the threads backend earns its keep on I/O-bound
``mrt`` cells instead) and a single ``queue`` invocation tracks
``serial`` plus the per-cell claim/done file round trip (its
parallelism comes from running N invocations).  Regressions in the
pool fan-out or the queue's filesystem protocol show up as shrinking
ratios.

Also asserts the backend contract end to end: every backend produces
identical results for identical specs, and a warm cache serves the
whole sweep without simulating anything.
"""

import os

from repro.reports import render_table
from repro.scenarios import QueueBackend, expand_seeds, get_scenario, run_sweep

SEEDS = (1, 2, 3, 4)


def sweep_specs():
    return expand_seeds(get_scenario("topology-tiny"), SEEDS)


def test_bench_scenario_sweep_backends(benchmark, tmp_path):
    all_cores = os.cpu_count() or 1

    def timed_sweeps():
        serial = run_sweep(sweep_specs(), workers=1, backend="serial")
        threads = run_sweep(
            sweep_specs(), workers=all_cores, backend="threads"
        )
        processes = run_sweep(
            sweep_specs(), workers=all_cores, backend="processes"
        )
        queue = run_sweep(
            sweep_specs(),
            backend=QueueBackend(str(tmp_path / "queue")),
        )
        cold = run_sweep(
            sweep_specs(),
            workers=all_cores,
            backend="processes",
            cache_dir=str(tmp_path / "cache"),
        )
        warm = run_sweep(
            sweep_specs(),
            workers=all_cores,
            backend="processes",
            cache_dir=str(tmp_path / "cache"),
        )
        return serial, threads, processes, queue, cold, warm

    serial, threads, processes, queue, cold, warm = benchmark.pedantic(
        timed_sweeps, rounds=1, iterations=1
    )
    speedup = (
        serial.elapsed_seconds / processes.elapsed_seconds
        if processes.elapsed_seconds
        else 1.0
    )
    rows = [
        (
            report.backend,
            report.workers if report.backend != "serial" else 1,
            cache,
            f"{report.elapsed_seconds:.2f}s",
        )
        for report, cache in (
            (serial, "off"),
            (threads, "off"),
            (processes, "off"),
            (queue, "off"),
            (cold, "cold"),
            (warm, "warm"),
        )
    ]
    print()
    print(
        render_table(
            ("backend", "workers", "cache", "wall-clock"),
            rows,
            title=(
                f"Scenario sweep: {len(SEEDS)} seeds across backends"
                f" (processes speed-up {speedup:.2f}x over serial)"
            ),
        )
    )
    # Identical specs => identical results, whatever backend ran them.
    for report in (threads, processes, queue, cold):
        assert len(report.results) == len(serial.results)
        assert not report.failures
        for left, right in zip(serial.results, report.results):
            assert left.spec_hash == right.spec_hash
            assert left.metrics == right.metrics
    # The warm re-run is served entirely from the spec-hash cache.
    assert cold.cache_misses == len(SEEDS)
    assert warm.cache_hits == len(SEEDS)
    assert warm.cache_misses == 0
