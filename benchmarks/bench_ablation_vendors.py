"""Ablation A2: vendor duplicate-suppression impact at internet scale.

Runs the registered ``internet-all-cisco`` and ``internet-all-junos``
scenarios through the scenario engine — the same small synthetic
internet, once with every router on a non-deduplicating stack and once
all-Junos — and compares total announcement volume and the `nn` share.
The paper's §3 summary ("only Junos prevents duplicates") predicts the
all-Junos internet produces fewer `nn` announcements.
"""

from repro.reports import format_share, render_table
from repro.scenarios import get_scenario, run_sweep

FLEETS = {
    "all-Cisco": "internet-all-cisco",
    "all-Junos": "internet-all-junos",
}


def test_bench_ablation_vendor_dedup(benchmark):
    def sweep():
        report = run_sweep(
            [get_scenario(name) for name in FLEETS.values()], workers=1
        )
        # Positional zip against FLEETS: a dropped failed cell would
        # shift the pairing, so fail loudly instead.
        report.raise_failures()
        return dict(zip(FLEETS, report.results))

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for label, result in results.items():
        duplicates = result.metrics["duplicates"]
        rows.append(
            (
                label,
                result.metrics["update_counts"]["observations"],
                duplicates["nn"],
                format_share(duplicates["nn_share"]),
            )
        )
    print()
    print(
        render_table(
            ("fleet", "observations", "nn count", "nn share"),
            rows,
            title="Ablation A2: vendor duplicate suppression",
        )
    )
    cisco_nn = results["all-Cisco"].metrics["duplicates"]["nn"]
    junos_nn = results["all-Junos"].metrics["duplicates"]["nn"]
    # Junos's Adj-RIB-Out comparison suppresses duplicates fleet-wide.
    assert junos_nn < cisco_nn
