"""Ablation A2: vendor duplicate-suppression impact at internet scale.

Runs the small synthetic internet twice — once with every router
running a non-deduplicating stack (Cisco IOS) and once all-Junos — and
compares total message volume and the `nn` share.  The paper's §3
summary ("only Junos prevents duplicates") predicts the all-Junos
internet produces fewer `nn` announcements.
"""

from repro.analysis import (
    AnnouncementType,
    classify_observations,
    observations_from_collector,
)
from repro.reports import format_share, render_table
from repro.vendors import CISCO_IOS, JUNOS
from repro.workloads import InternetConfig, InternetModel


def run_with_vendor(vendor):
    config = InternetConfig.small(vendor_mix=((vendor, 1.0),))
    day = InternetModel(config).run()
    observations = []
    for collector in day.collectors():
        observations.extend(observations_from_collector(collector))
    observations.sort(key=lambda obs: obs.timestamp)
    return day, classify_observations(observations)


def test_bench_ablation_vendor_dedup(benchmark):
    def sweep():
        return {
            "all-Cisco": run_with_vendor(CISCO_IOS),
            "all-Junos": run_with_vendor(JUNOS),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows = []
    for label, (day, counts) in results.items():
        rows.append(
            (
                label,
                day.total_collected_messages(),
                counts.counts[AnnouncementType.NN],
                format_share(counts.share(AnnouncementType.NN)),
            )
        )
    print()
    print(
        render_table(
            ("fleet", "collected msgs", "nn count", "nn share"),
            rows,
            title="Ablation A2: vendor duplicate suppression",
        )
    )
    _, cisco_counts = results["all-Cisco"]
    _, junos_counts = results["all-Junos"]
    # Junos's Adj-RIB-Out comparison suppresses duplicates fleet-wide.
    assert (
        junos_counts.counts[AnnouncementType.NN]
        < cisco_counts.counts[AnnouncementType.NN]
    )
