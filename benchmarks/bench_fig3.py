"""Bench F3: announcement types per BGP session for one beacon prefix
(Figure 3: collector rrc00, prefix 84.205.64.0/24).

Prints one row per session (sorted by announcement count, like the
figure's x-axis) with the per-type break-down.  Paper findings:

* sessions see very different announcement volumes for the same
  beacon prefix;
* each session shows its own mix of types.
"""

from repro.analysis import (
    classify_observations,
    observations_from_collector,
)
from repro.analysis.classify import TYPE_ORDER, UpdateClassifier
from repro.reports import render_table


def _per_session_counts(day):
    collector = day.collector("rrc00")
    beacon = day.beacon_prefixes[0]
    by_session = {}
    for observation in observations_from_collector(collector):
        if observation.prefix != beacon:
            continue
        by_session.setdefault(observation.session, []).append(observation)
    return {
        session: classify_observations(stream)
        for session, stream in by_session.items()
    }


def test_bench_fig3_types_per_session(benchmark, mar20_day):
    per_session = benchmark.pedantic(
        _per_session_counts, args=(mar20_day,), rounds=1, iterations=1
    )
    beacon = mar20_day.beacon_prefixes[0]
    ordered = sorted(
        per_session.items(),
        key=lambda item: item[1].announcements_total,
        reverse=True,
    )
    rows = []
    for session, counts in ordered:
        rows.append(
            (
                f"AS{session.peer_asn}",
                counts.announcements_total,
                *(counts.counts[kind] for kind in TYPE_ORDER),
            )
        )
    print()
    print(
        render_table(
            ("session", "total", "pc", "pn", "nc", "nn", "xc", "xn"),
            rows,
            title=(
                f"Figure 3: types per BGP session, beacon {beacon},"
                " collector rrc00"
            ),
        )
    )
    assert len(ordered) >= 3, "beacon visible on too few sessions"
    totals = [counts.announcements_total for _, counts in ordered]
    # Sessions differ in volume...
    assert max(totals) > min(totals)
    # ...and in their type mix.
    mixes = {
        tuple(
            round(counts.share(kind), 2) for kind in TYPE_ORDER
        )
        for _, counts in ordered
        if counts.classified_total >= 10
    }
    assert len(mixes) > 1
