"""Bench EXP1-EXP4: the §3 laboratory behavior matrix.

Regenerates the paper's lab findings for every vendor and prints the
observation matrix.  Paper ground truth:

* Exp1 — update on X1–Y1 wire, nothing at collector (Junos: nothing).
* Exp2 — community-only update reaches the collector on all vendors.
* Exp3 — egress cleaning still leaks an `nn` duplicate (except Junos).
* Exp4 — ingress cleaning fully suppresses the spurious update.
"""

from repro.reports import render_table
from repro.simulator import run_all_experiments, run_experiment
from repro.vendors import ALL_PROFILES, CISCO_IOS, JUNOS


def test_bench_lab_experiment_matrix(benchmark):
    results = benchmark.pedantic(
        run_all_experiments, rounds=1, iterations=1
    )
    rows = [result.summary_row() for result in results]
    print()
    print(
        render_table(
            ("exp", "vendor", "Y1->X1", "collector", "behavior"),
            rows,
            title="EXP1-4: lab behavior matrix (paper §3)",
        )
    )
    by_key = {
        (result.experiment, result.vendor): result for result in results
    }
    # The paper's summary assertions, per vendor.
    for vendor in ALL_PROFILES:
        junos = vendor is JUNOS
        exp1 = by_key[("exp1", vendor.name)]
        assert exp1.update_sent_y1_to_x1 != junos
        assert not exp1.update_reached_collector
        exp2 = by_key[("exp2", vendor.name)]
        assert exp2.update_reached_collector
        assert exp2.collector_saw_community_change
        exp3 = by_key[("exp3", vendor.name)]
        assert exp3.update_reached_collector != junos
        if not junos:
            assert exp3.collector_saw_duplicate
        exp4 = by_key[("exp4", vendor.name)]
        assert not exp4.update_reached_collector


def test_bench_single_lab_run_cisco(benchmark):
    """Time one complete lab cycle (build + converge + flap)."""
    result = benchmark.pedantic(
        lambda: run_experiment("exp2", CISCO_IOS), rounds=1, iterations=1
    )
    assert result.collector_saw_community_change
