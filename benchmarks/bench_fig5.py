"""Bench F5: duplicate (`nn`) bursts on a cleaning peer (Figure 5).

The paper's Figure 5 shows the same beacon prefix via a peer
(AS20811) that removes all communities: withdrawal phases open with a
`pn` and continue with `nn` duplicates — the egress-cleaned residue of
upstream community exploration (lab Exp3 at internet scale).
"""

from repro.analysis import AnnouncementType, group_into_streams
from repro.analysis.exploration import stream_phase_activity
from repro.beacons import BeaconSchedule, PhaseKind
from repro.netbase.timebase import format_utc
from repro.reports import render_table


def _beacon_streams(day, observations):
    beacons = set(day.beacon_prefixes)
    return group_into_streams(
        obs for obs in observations if obs.prefix in beacons
    )


def test_bench_fig5_duplicate_bursts(
    benchmark, mar20_day, mar20_observations
):
    streams = _beacon_streams(mar20_day, mar20_observations)

    def pick_and_analyze():
        best_key, best_activity, best_count = None, None, -1
        for key, stream in streams.items():
            # Figure 5's peer cleans communities: restrict to streams
            # that are community-free throughout.
            if any(
                obs.is_announcement and not obs.communities.is_empty()
                for obs in stream
            ):
                continue
            activity = stream_phase_activity(stream)
            nn_count = activity.type_counts()[AnnouncementType.NN]
            if nn_count > best_count:
                best_key, best_activity, best_count = (
                    key, activity, nn_count,
                )
        return best_key, best_activity

    key, activity = benchmark.pedantic(
        pick_and_analyze, rounds=1, iterations=1
    )
    assert key is not None, "no community-free beacon stream found"
    session, prefix = key
    rows = [
        (format_utc(when), kind.value)
        for when, kind in activity.events
    ]
    print()
    print(
        render_table(
            ("time", "type"),
            rows[:40],
            title=(
                f"Figure 5: announcements over time, beacon {prefix},"
                f" cleaning peer AS{session.peer_asn} (nn = cleaned"
                " duplicates)"
            ),
        )
    )
    counts = activity.type_counts()
    assert counts[AnnouncementType.NN] >= 1, "no duplicates on stream"
    # No community-only announcements can exist on a cleaned stream.
    assert counts[AnnouncementType.NC] == 0
    # Duplicates concentrate in withdrawal phases.
    schedule = BeaconSchedule()
    nn_events = [
        when
        for when, kind in activity.events
        if kind == AnnouncementType.NN
    ]
    in_withdraw = sum(
        1
        for when in nn_events
        if schedule.classify(when) == PhaseKind.WITHDRAW
    )
    assert in_withdraw / len(nn_events) >= 0.5
