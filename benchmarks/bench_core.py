#!/usr/bin/env python
"""Simulator-core micro-benchmark: events/sec and peak heap size.

Runs the topology-scale-ladder scenarios through the raw
:class:`~repro.workloads.InternetModel` (no analysis layer, so the
numbers isolate the discrete-event core) and records the results into
``BENCH_core.json`` so the performance trajectory of the hot path is
tracked from PR to PR.

Metrics per scenario:

* ``events_per_sec`` — delivered BGP messages per wall-clock second.
  Messages, not queue events, because delivery batching coalesces many
  messages into one queue event; the message count is invariant across
  batching modes, which makes the metric comparable across toolkit
  versions.
* ``queue_events_executed`` / ``peak_heap`` — event-queue internals
  (batching and heap compaction show up here).
* ``collector_hash`` — sha256 over every collector's MRT dump.  Two
  toolkit versions that disagree on this hash changed *behavior*, not
  just speed.

Usage::

    python benchmarks/bench_core.py            # tiny + medium ladder
    python benchmarks/bench_core.py --quick    # tiny only, 1 repeat
    python benchmarks/bench_core.py --verify   # batched vs unbatched
    python benchmarks/bench_core.py --baseline BENCH_core.json

``--verify`` runs every scenario twice — delivery batching on and off
— and fails unless the collector hashes match, proving the batching
fast path is a pure optimization.  ``--baseline`` compares events/sec
against a previously written report and prints the speedups.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import time

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src"),
)

from repro.scenarios import get_scenario  # noqa: E402
from repro.scenarios.engine import internet_config_from_spec  # noqa: E402
from repro.simulator.session import BGPSession  # noqa: E402
from repro.workloads import InternetModel  # noqa: E402

#: The topology-scale ladder, smallest first.
LADDER = ("topology-tiny", "topology-medium", "topology-large")
DEFAULT_SCENARIOS = ("topology-tiny", "topology-medium")


def collector_hash(day) -> str:
    """sha256 over every collector's MRT archive (wire bytes)."""
    digest = hashlib.sha256()
    for collector in day.collectors():
        digest.update(collector.name.encode("utf-8"))
        digest.update(collector.dump_mrt())
    return digest.hexdigest()[:16]


def run_once(scenario: str, *, batching: bool = True) -> dict:
    """One measured simulation of *scenario*; returns its metrics."""
    config = internet_config_from_spec(get_scenario(scenario))
    config.delivery_batching = batching
    # Session ids (and the addresses derived from them) come from a
    # process-global counter; pin it so every run of the same scenario
    # in this process numbers its sessions identically and collector
    # hashes are comparable across runs and batching modes.
    BGPSession._counter = 0
    model = InternetModel(config)
    started = time.perf_counter()
    day = model.run()
    elapsed = time.perf_counter() - started
    network = day.network
    delivered = sum(
        router.received_updates for router in network.routers.values()
    ) + day.total_collected_messages()
    return {
        "scenario": scenario,
        "delivery_batching": batching,
        "elapsed_seconds": round(elapsed, 4),
        "messages_delivered": delivered,
        "events_per_sec": round(delivered / elapsed, 1) if elapsed else 0.0,
        "queue_events_executed": network.queue.processed,
        "peak_heap": network.queue.peak_pending,
        "collector_hash": collector_hash(day),
    }


def run_best_of(scenario: str, repeat: int, *, batching: bool = True) -> dict:
    """Best (highest events/sec) of *repeat* runs, to damp OS noise."""
    best = None
    for _ in range(max(1, repeat)):
        result = run_once(scenario, batching=batching)
        if best is None or result["events_per_sec"] > best["events_per_sec"]:
            best = result
    return best


def verify_determinism(scenarios, repeat: int) -> "list[dict]":
    """Run batched vs unbatched; identical collector hashes required."""
    runs = []
    for scenario in scenarios:
        batched = run_best_of(scenario, repeat, batching=True)
        unbatched = run_best_of(scenario, repeat, batching=False)
        match = batched["collector_hash"] == unbatched["collector_hash"]
        print(
            f"{scenario}: batched={batched['collector_hash']}"
            f" unbatched={unbatched['collector_hash']}"
            f" -> {'IDENTICAL' if match else 'MISMATCH'}"
        )
        if not match:
            raise SystemExit(
                f"determinism violation: batching changed collector"
                f" output on {scenario}"
            )
        runs.append(batched)
        runs.append(unbatched)
    return runs


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark the simulator hot path."
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="smoke mode: smallest ladder rung only, one repeat",
    )
    parser.add_argument(
        "--scenarios",
        default=None,
        help=f"comma-separated scenario names (default:"
        f" {','.join(DEFAULT_SCENARIOS)}; ladder: {','.join(LADDER)})",
    )
    parser.add_argument(
        "--repeat",
        type=int,
        default=3,
        help="runs per scenario; the best is recorded (default 3)",
    )
    parser.add_argument(
        "--verify",
        action="store_true",
        help="also run with batching disabled and require identical"
        " collector hashes",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="previous BENCH_core.json to compute speedups against",
    )
    parser.add_argument(
        "--output",
        default=os.path.join(
            os.path.dirname(os.path.abspath(__file__)), "..",
            "BENCH_core.json",
        ),
        help="where to write the JSON report (default: repo root)",
    )
    args = parser.parse_args(argv)

    if args.scenarios:
        scenarios = tuple(
            name.strip() for name in args.scenarios.split(",") if name.strip()
        )
    elif args.quick:
        scenarios = (LADDER[0],)
    else:
        scenarios = DEFAULT_SCENARIOS
    repeat = 1 if args.quick else args.repeat

    if args.verify:
        runs = verify_determinism(scenarios, repeat)
    else:
        runs = []
        for scenario in scenarios:
            result = run_best_of(scenario, repeat)
            runs.append(result)
            print(
                f"{scenario}: {result['events_per_sec']:,.0f} events/s,"
                f" {result['messages_delivered']} messages in"
                f" {result['elapsed_seconds']:.3f}s,"
                f" peak heap {result['peak_heap']},"
                f" hash {result['collector_hash']}"
            )

    report = {
        "version": 1,
        "quick": bool(args.quick),
        "repeat": repeat,
        "runs": runs,
    }

    # Merge with any existing report: keep the recorded baseline block
    # and the entries of scenarios this invocation did not re-run, so a
    # --quick smoke run never erases the full ladder's numbers.
    if os.path.exists(args.output):
        try:
            with open(args.output, "r", encoding="utf-8") as handle:
                previous_report = json.load(handle)
        except (OSError, ValueError):
            previous_report = {}
        if "baseline" in previous_report:
            report["baseline"] = previous_report["baseline"]
        fresh = {
            (run["scenario"], run.get("delivery_batching", True))
            for run in runs
        }
        kept = [
            run
            for run in previous_report.get("runs", [])
            if (run.get("scenario"), run.get("delivery_batching", True))
            not in fresh
        ]
        report["runs"] = sorted(
            kept + runs,
            key=lambda run: (
                run.get("scenario", ""),
                not run.get("delivery_batching", True),
            ),
        )

    if args.baseline and os.path.exists(args.baseline):
        with open(args.baseline, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)
        previous = {
            run["scenario"]: run
            for run in baseline.get("runs", [])
            if run.get("delivery_batching", True)
        }
        speedups = {}
        for run in runs:
            before = previous.get(run["scenario"])
            if not before or not before.get("events_per_sec"):
                continue
            speedups[run["scenario"]] = round(
                run["events_per_sec"] / before["events_per_sec"], 2
            )
            same = before.get("collector_hash") == run["collector_hash"]
            print(
                f"{run['scenario']}: {speedups[run['scenario']]}x vs"
                f" baseline, collector hash"
                f" {'unchanged' if same else 'CHANGED'}"
            )
        report["speedup_vs_baseline"] = speedups

    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"wrote {os.path.abspath(args.output)}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
