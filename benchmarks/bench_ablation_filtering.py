"""Ablation A1: where should communities be filtered?

DESIGN.md calls out the ingress/egress cleaning distinction as the
paper's actionable recommendation.  This ablation quantifies, in the
controlled lab, the collector-visible message cost of each policy:

* no filtering        → community-only (`nc`) updates propagate;
* egress filtering    → `nn` duplicates still leak (except Junos);
* ingress filtering   → spurious updates fully suppressed.
"""

from repro.reports import render_table
from repro.simulator import run_experiment
from repro.vendors import ALL_PROFILES, JUNOS

SCENARIOS = (
    ("exp2", "no filtering"),
    ("exp3", "egress cleaning at X1"),
    ("exp4", "ingress cleaning at X1"),
)


def run_sweep():
    results = {}
    for experiment, _label in SCENARIOS:
        for vendor in ALL_PROFILES:
            results[(experiment, vendor.name)] = run_experiment(
                experiment, vendor
            )
    return results


def test_bench_ablation_filtering(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = []
    for experiment, label in SCENARIOS:
        for vendor in ALL_PROFILES:
            result = results[(experiment, vendor.name)]
            rows.append(
                (
                    label,
                    vendor.name,
                    len(
                        [
                            m
                            for m in result.collector_messages
                            if m.kind == "announce"
                        ]
                    ),
                )
            )
    print()
    print(
        render_table(
            ("filtering", "vendor", "collector msgs after link event"),
            rows,
            title="Ablation A1: community filtering placement",
        )
    )
    for vendor in ALL_PROFILES:
        unfiltered = len(
            results[("exp2", vendor.name)].collector_messages
        )
        egress = len(results[("exp3", vendor.name)].collector_messages)
        ingress = len(results[("exp4", vendor.name)].collector_messages)
        # Ingress cleaning is strictly the quietest.
        assert ingress == 0
        assert unfiltered >= 1
        if vendor is JUNOS:
            assert egress == 0  # dedup absorbs the cleaned duplicate
        else:
            assert egress >= 1  # the leaked nn duplicate
