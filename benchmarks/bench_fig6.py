"""Bench F6: revealed community attributes during withdrawal phases
over the decade (Figure 6).

The paper finds that the number of unique community attributes revealed
during beacon withdrawal phases grew multifold from 2010 to 2020 while
the *ratio* (withdrawal-exclusive / total) stayed stable around 60%.
On the single day 2020-03-15: 62% exclusively during withdrawals, 17%
during announcements, <1% outside.
"""

from repro.analysis.revealed import revealed_communities
from repro.reports import format_share, render_table


def test_bench_fig6_longitudinal_revelation(benchmark, longitudinal_series):
    rows_data = benchmark(longitudinal_series.revealed_series)
    rows = [
        (day, total, withdrawal, format_share(ratio))
        for day, total, withdrawal, ratio in rows_data
    ]
    print()
    print(
        render_table(
            ("day", "total uniq", "withdrawal-only", "ratio"),
            rows,
            title=(
                "Figure 6: revealed unique community attributes during"
                " withdrawal phases (beacons)"
            ),
        )
    )
    populated = [row for row in rows_data if row[1] > 0]
    assert len(populated) >= 5
    # Absolute growth across the decade.
    assert populated[-1][1] > populated[0][1]
    # The withdrawal-exclusive ratio dominates and is fairly stable
    # (days with trivially few attributes are sampling noise).
    mean, deviation = longitudinal_series.ratio_stability(min_total=25)
    assert mean > 0.4, f"withdrawal ratio too low: {mean:.2f}"
    assert deviation < 0.35, f"ratio unstable: +-{deviation:.2f}"


def test_bench_fig6_single_day(
    benchmark, mar20_day, mar20_observations
):
    """The §6 single-day break-down on the mar20-like day."""
    beacons = set(mar20_day.beacon_prefixes)
    beacon_observations = [
        obs for obs in mar20_observations if obs.prefix in beacons
    ]
    result = benchmark(revealed_communities, beacon_observations)
    rows = [
        (label, count, format_share(share))
        for label, count, share in result.as_rows()
    ]
    print()
    print(
        render_table(
            ("category", "count", "share"),
            rows,
            title=(
                "Revealed community attributes, 2020-03-15 (paper: 62%"
                " exclusively withdrawal, 17% announcement, <1% outside)"
            ),
        )
    )
    assert result.total_unique > 0
    # Withdrawal-phase exploration dominates revelation.
    assert result.withdrawal_ratio > 0.4
    assert result.exclusively_withdrawal > result.exclusively_announcement
